(* Bitcode encoder: in-memory module -> compact binary image.

   Section order is chosen so the decoder never needs forward
   references: types, global headers, function headers, named-type
   definitions, global initializers (may reference functions — vtables),
   then function bodies. *)

open Llvm_ir
open Ir
open Format

type stats = {
  mutable one_word_instrs : int;
  mutable wide_instrs : int;
  mutable total_bytes : int;
}

type enc = {
  buf : Buffer.t;
  types : (string, int) Hashtbl.t; (* type key -> index *)
  type_records : Buffer.t;
  mutable type_count : int;
  gindex : (int, int) Hashtbl.t; (* gvar id -> module index *)
  findex : (int, int) Hashtbl.t; (* func id -> module index *)
  stats : stats;
}

let rec type_index (e : enc) (ty : Ltype.t) : int =
  let key = Ltype.to_string ty in
  match Hashtbl.find_opt e.types key with
  | Some k -> k
  | None ->
    (* intern components first so records only reference lower indices;
       Named breaks recursive cycles *)
    let record = Buffer.create 8 in
    (match ty with
    | Ltype.Void -> write_varint record t_void
    | Ltype.Bool -> write_varint record t_bool
    | Ltype.Integer k ->
      write_varint record t_integer;
      write_varint record (int_kind_code k)
    | Ltype.Float -> write_varint record t_float
    | Ltype.Double -> write_varint record t_double
    | Ltype.Pointer p ->
      let pi = type_index e p in
      write_varint record t_pointer;
      write_varint record pi
    | Ltype.Array (n, elt) ->
      let ei = type_index e elt in
      write_varint record t_array;
      write_varint record n;
      write_varint record ei
    | Ltype.Struct fields ->
      let idxs = List.map (type_index e) fields in
      write_varint record t_struct;
      write_varint record (List.length idxs);
      List.iter (write_varint record) idxs
    | Ltype.Function (ret, params, varargs) ->
      let ri = type_index e ret in
      let pis = List.map (type_index e) params in
      write_varint record t_function;
      write_varint record ri;
      write_varint record (if varargs then 1 else 0);
      write_varint record (List.length pis);
      List.iter (write_varint record) pis
    | Ltype.Named n ->
      write_varint record t_named;
      write_string record n
    | Ltype.Opaque n ->
      write_varint record t_opaque;
      write_string record n);
    (* the recursive interning above may have added this type already
       (mutually recursive shapes); re-check *)
    (match Hashtbl.find_opt e.types key with
    | Some k -> k
    | None ->
      let k = e.type_count in
      e.type_count <- e.type_count + 1;
      Hashtbl.replace e.types key k;
      Buffer.add_buffer e.type_records record;
      k)

let rec write_const (e : enc) (b : Buffer.t) (c : const) : unit =
  match c with
  | Cbool false -> write_varint b c_bool_false
  | Cbool true -> write_varint b c_bool_true
  | Cint (ty, v) ->
    write_varint b c_int;
    write_varint b (type_index e ty);
    write_varint64 b (zigzag v)
  | Cfloat (ty, f) ->
    write_varint b c_float;
    write_varint b (type_index e ty);
    write_f64 b f
  | Cnull ty ->
    write_varint b c_null;
    write_varint b (type_index e ty)
  | Cundef ty ->
    write_varint b c_undef;
    write_varint b (type_index e ty)
  | Czero ty ->
    write_varint b c_zero;
    write_varint b (type_index e ty)
  | Carray (elt, elts) ->
    write_varint b c_array;
    write_varint b (type_index e elt);
    write_varint b (List.length elts);
    List.iter (write_const e b) elts
  | Cstruct (ty, elts) ->
    write_varint b c_struct;
    write_varint b (type_index e ty);
    write_varint b (List.length elts);
    List.iter (write_const e b) elts
  | Cgvar g ->
    write_varint b c_gvar;
    write_varint b (Hashtbl.find e.gindex g.gid)
  | Cfunc f ->
    write_varint b c_func;
    write_varint b (Hashtbl.find e.findex f.fid)
  | Ccast (ty, c) ->
    write_varint b c_cast;
    write_varint b (type_index e ty);
    write_const e b c

(* -- function bodies --------------------------------------------------------- *)

(* operand id spaces: [args][pool][instrs][blocks] *)
type pool_entry = Pconst of const | Pglobal of int | Pfunc of int

let encode_body (e : enc) ~(strip : bool) (b : Buffer.t) (f : func) : unit =
  let ids : (string, int) Hashtbl.t = Hashtbl.create 64 in
  (* identity keys for values *)
  let key_of (v : value) : string =
    match v with
    | Vinstr i -> Printf.sprintf "i%d" i.iid
    | Varg a -> Printf.sprintf "a%d" a.aid
    | Vblock blk -> Printf.sprintf "b%d" blk.bid
    | Vglobal g -> Printf.sprintf "g%d" g.gid
    | Vfunc fn -> Printf.sprintf "f%d" fn.fid
    | Vconst c -> Printf.sprintf "c:%s:%s"
        (Ltype.to_string (type_of_const (Ltype.create_table ()) c))
        (Fmt.str "%a" Printer.pp_const c)
  in
  let next = ref 0 in
  let pool : pool_entry list ref = ref [] in
  List.iter
    (fun a ->
      Hashtbl.replace ids (key_of (Varg a)) !next;
      incr next)
    f.fargs;
  (* collect pool entries (constants, globals, function refs) in order *)
  iter_instrs
    (fun i ->
      Array.iter
        (fun v ->
          let key = key_of v in
          if not (Hashtbl.mem ids key) then
            match v with
            | Vconst c ->
              Hashtbl.replace ids key !next;
              incr next;
              pool := Pconst c :: !pool
            | Vglobal g ->
              Hashtbl.replace ids key !next;
              incr next;
              pool := Pglobal (Hashtbl.find e.gindex g.gid) :: !pool
            | Vfunc fn ->
              Hashtbl.replace ids key !next;
              incr next;
              pool := Pfunc (Hashtbl.find e.findex fn.fid) :: !pool
            | Vinstr _ | Varg _ | Vblock _ -> ())
        i.operands)
    f;
  let pool = List.rev !pool in
  (* then instruction results, then blocks *)
  iter_instrs
    (fun i ->
      Hashtbl.replace ids (key_of (Vinstr i)) !next;
      incr next)
    f;
  List.iter
    (fun blk ->
      Hashtbl.replace ids (key_of (Vblock blk)) !next;
      incr next)
    f.fblocks;
  (* emit the pool *)
  write_varint b (List.length pool);
  List.iter
    (fun entry ->
      match entry with
      | Pconst c ->
        write_varint b v_const;
        write_const e b c
      | Pglobal k ->
        write_varint b v_global;
        write_varint b k
      | Pfunc k ->
        write_varint b v_function;
        write_varint b k)
    pool;
  (* blocks and instructions *)
  write_varint b (List.length f.fblocks);
  List.iter
    (fun blk ->
      write_string b (if strip then "" else blk.bname);
      write_varint b (List.length blk.instrs);
      List.iter
        (fun i ->
          let ty_field =
            match i.iop with
            | Malloc | Alloca -> Option.get i.alloc_ty
            | _ -> i.ity
          in
          let tyi = type_index e ty_field in
          let op_ids =
            Array.map (fun v -> Hashtbl.find ids (key_of v)) i.operands
          in
          let opc = opcode_code i.iop in
          let count_operand =
            (* malloc/alloca distinguish "no count" from "count" via the
               operand count itself, so nothing extra is needed *)
            Array.length op_ids
          in
          let packed =
            match count_operand with
            | 0 when tyi < 256 ->
              Some (Int32.logor
                      (Int32.shift_left (Int32.of_int opc) 24)
                      (Int32.shift_left (Int32.of_int tyi) 16))
            | 1 when tyi < 256 && op_ids.(0) < 65536 ->
              Some (Int32.logor (Int32.shift_left 1l 30)
                      (Int32.logor
                         (Int32.shift_left (Int32.of_int opc) 24)
                         (Int32.logor
                            (Int32.shift_left (Int32.of_int tyi) 16)
                            (Int32.of_int op_ids.(0)))))
            | 2 when tyi < 256 && op_ids.(0) < 256 && op_ids.(1) < 256 ->
              Some (Int32.logor (Int32.shift_left 2l 30)
                      (Int32.logor
                         (Int32.shift_left (Int32.of_int opc) 24)
                         (Int32.logor
                            (Int32.shift_left (Int32.of_int tyi) 16)
                            (Int32.of_int ((op_ids.(0) lsl 8) lor op_ids.(1))))))
            | 3 when tyi < 64 && Array.for_all (fun id -> id < 64) op_ids ->
              Some (Int32.logor (Int32.shift_left 3l 30)
                      (Int32.logor
                         (Int32.shift_left (Int32.of_int opc) 24)
                         (Int32.of_int
                            ((tyi lsl 18) lor (op_ids.(0) lsl 12)
                            lor (op_ids.(1) lsl 6) lor op_ids.(2)))))
            | _ -> None
          in
          match packed with
          | Some word ->
            write_u32_be b word;
            e.stats.one_word_instrs <- e.stats.one_word_instrs + 1
          | None ->
            (* compact wide form: escape byte, opcode byte, varints *)
            Buffer.add_char b (Char.chr wide_escape_opcode);
            Buffer.add_char b (Char.chr opc);
            write_varint b tyi;
            write_varint b (Array.length op_ids);
            Array.iter (write_varint b) op_ids;
            e.stats.wide_instrs <- e.stats.wide_instrs + 1)
        blk.instrs)
    f.fblocks;
  (* symbol table: names of args and value-producing instructions;
     stripped images carry no local names, like stripped executables *)
  let named = ref [] in
  if strip then begin
    write_varint b 0
  end
  else begin
  List.iter
    (fun a ->
      if a.aname <> "" then
        named := (Hashtbl.find ids (key_of (Varg a)), a.aname) :: !named)
    f.fargs;
  iter_instrs
    (fun i ->
      if i.iname <> "" && i.ity <> Ltype.Void then
        named := (Hashtbl.find ids (key_of (Vinstr i)), i.iname) :: !named)
    f;
  let named = List.rev !named in
  write_varint b (List.length named);
  List.iter
    (fun (id, name) ->
      write_varint b id;
      write_string b name)
    named
  end

let encode ?(strip = false) (m : modul) : string * stats =
  ignore strip;
  let stats = { one_word_instrs = 0; wide_instrs = 0; total_bytes = 0 } in
  let e =
    { buf = Buffer.create 4096; types = Hashtbl.create 64;
      type_records = Buffer.create 512; type_count = 0;
      gindex = Hashtbl.create 32; findex = Hashtbl.create 32; stats }
  in
  List.iteri (fun k g -> Hashtbl.replace e.gindex g.gid k) m.mglobals;
  List.iteri (fun k f -> Hashtbl.replace e.findex f.fid k) m.mfuncs;
  (* body sections are built first so the type table is complete *)
  let body = Buffer.create 4096 in
  write_string body m.mname;
  (* global headers *)
  write_varint body (List.length m.mglobals);
  List.iter
    (fun g ->
      write_string body g.gname;
      let flags =
        (if g.gconstant then 1 else 0)
        lor (if g.glinkage = Internal then 2 else 0)
        lor (if g.ginit <> None then 4 else 0)
      in
      write_varint body flags;
      write_varint body (type_index e g.gty))
    m.mglobals;
  (* function headers *)
  write_varint body (List.length m.mfuncs);
  List.iter
    (fun f ->
      write_string body f.fname;
      let flags =
        (if f.flinkage = Internal then 1 else 0)
        lor (if f.fvarargs then 2 else 0)
        lor (if is_declaration f then 4 else 0)
      in
      write_varint body flags;
      write_varint body (type_index e f.freturn);
      write_varint body (List.length f.fargs);
      List.iter
        (fun a ->
          write_string body (if strip then "" else a.aname);
          write_varint body (type_index e a.aty))
        f.fargs)
    m.mfuncs;
  (* named type definitions *)
  let names = Hashtbl.fold (fun n ty acc -> (n, ty) :: acc) m.mtypes [] in
  let names = List.sort compare names in
  write_varint body (List.length names);
  List.iter
    (fun (n, ty) ->
      write_string body n;
      write_varint body (type_index e ty))
    names;
  (* global initializers *)
  List.iter
    (fun g ->
      match g.ginit with
      | Some c -> write_const e body c
      | None -> ())
    m.mglobals;
  (* function bodies *)
  List.iter
    (fun f -> if not (is_declaration f) then encode_body e ~strip body f)
    m.mfuncs;
  (* assemble: magic, version, type table, body *)
  Buffer.add_string e.buf magic;
  Buffer.add_char e.buf (Char.chr version);
  write_varint e.buf e.type_count;
  Buffer.add_buffer e.buf e.type_records;
  Buffer.add_buffer e.buf body;
  let out = Buffer.contents e.buf in
  stats.total_bytes <- String.length out;
  (out, stats)

lib/bitcode/decoder.ml: Array Format Int32 Ir List Llvm_ir Ltype Printf String

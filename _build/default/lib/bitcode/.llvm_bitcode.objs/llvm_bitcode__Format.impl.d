lib/bitcode/format.ml: Buffer Char Int32 Int64 List Llvm_ir String

lib/bitcode/encoder.ml: Array Buffer Char Fmt Format Hashtbl Int32 Ir List Llvm_ir Ltype Option Printer Printf String

lib/bitcode/decoder.mli: Llvm_ir

lib/bitcode/encoder.mli: Llvm_ir

(** Bitcode decoder: binary image back to an in-memory module.  The
    round-trip [decode (encode m)] prints identically to [m] (the
    lossless-representations property of paper section 2.5). *)

exception Malformed of string

(** @raise Malformed on truncated or corrupt images. *)
val decode : string -> Llvm_ir.Ir.modul

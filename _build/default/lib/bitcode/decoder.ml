(* Bitcode decoder: binary image -> in-memory module. *)

open Llvm_ir
open Ir
open Format

exception Malformed = Format.Malformed

type dec = {
  r : reader;
  mutable type_table : Ltype.t array;
  mutable globals : gvar array;
  mutable funcs : func array;
  m : modul;
}

let read_type_table (d : dec) (count : int) : unit =
  let types = Array.make count Ltype.Void in
  for k = 0 to count - 1 do
    let tag = read_varint d.r in
    let ty =
      if tag = t_void then Ltype.Void
      else if tag = t_bool then Ltype.Bool
      else if tag = t_integer then Ltype.Integer (int_kind_of_code (read_varint d.r))
      else if tag = t_float then Ltype.Float
      else if tag = t_double then Ltype.Double
      else if tag = t_pointer then Ltype.Pointer types.(read_varint d.r)
      else if tag = t_array then begin
        let n = read_varint d.r in
        let elt = types.(read_varint d.r) in
        Ltype.Array (n, elt)
      end
      else if tag = t_struct then begin
        let n = read_varint d.r in
        Ltype.Struct (List.init n (fun _ -> types.(read_varint d.r)))
      end
      else if tag = t_function then begin
        let ret = types.(read_varint d.r) in
        let varargs = read_varint d.r = 1 in
        let n = read_varint d.r in
        let params = List.init n (fun _ -> types.(read_varint d.r)) in
        Ltype.Function (ret, params, varargs)
      end
      else if tag = t_named then Ltype.Named (read_string d.r)
      else if tag = t_opaque then Ltype.Opaque (read_string d.r)
      else raise (Malformed (Printf.sprintf "bad type tag %d" tag))
    in
    types.(k) <- ty
  done;
  d.type_table <- types

let rec read_const (d : dec) : const =
  let tag = read_varint d.r in
  if tag = c_bool_false then Cbool false
  else if tag = c_bool_true then Cbool true
  else if tag = c_int then begin
    let ty = d.type_table.(read_varint d.r) in
    Cint (ty, unzigzag (read_varint64 d.r))
  end
  else if tag = c_float then begin
    let ty = d.type_table.(read_varint d.r) in
    Cfloat (ty, read_f64 d.r)
  end
  else if tag = c_null then Cnull d.type_table.(read_varint d.r)
  else if tag = c_undef then Cundef d.type_table.(read_varint d.r)
  else if tag = c_zero then Czero d.type_table.(read_varint d.r)
  else if tag = c_array then begin
    let elt = d.type_table.(read_varint d.r) in
    let n = read_varint d.r in
    Carray (elt, List.init n (fun _ -> read_const d))
  end
  else if tag = c_struct then begin
    let ty = d.type_table.(read_varint d.r) in
    let n = read_varint d.r in
    Cstruct (ty, List.init n (fun _ -> read_const d))
  end
  else if tag = c_gvar then Cgvar d.globals.(read_varint d.r)
  else if tag = c_func then Cfunc d.funcs.(read_varint d.r)
  else if tag = c_cast then begin
    let ty = d.type_table.(read_varint d.r) in
    Ccast (ty, read_const d)
  end
  else raise (Malformed (Printf.sprintf "bad constant tag %d" tag))

let read_body (d : dec) (f : func) : unit =
  (* value id space: [args][pool][instrs][blocks] *)
  let values : value list ref = ref [] in
  let push v = values := v :: !values in
  List.iter (fun a -> push (Varg a)) f.fargs;
  let npool = read_varint d.r in
  for _ = 1 to npool do
    let tag = read_varint d.r in
    if tag = v_const then push (Vconst (read_const d))
    else if tag = v_global then push (Vglobal d.globals.(read_varint d.r))
    else if tag = v_function then push (Vfunc d.funcs.(read_varint d.r))
    else raise (Malformed "bad pool tag")
  done;
  let nblocks = read_varint d.r in
  (* read all instructions, creating shells; operand ids resolved after *)
  let pending : (instr * int array) list ref = ref [] in
  let blocks = ref [] in
  for _ = 1 to nblocks do
    let bname = read_string d.r in
    let blk = mk_block ~name:bname () in
    append_block f blk;
    blocks := blk :: !blocks;
    let ninstrs = read_varint d.r in
    for _ = 1 to ninstrs do
      let first = read_byte d.r in
      let wide = first = wide_escape_opcode in
      let opc, tyi, op_ids =
        if wide then begin
          let opc = read_byte d.r in
          let tyi = read_varint d.r in
          let n = read_varint d.r in
          (opc, tyi, Array.init n (fun _ -> read_varint d.r))
        end
        else begin
        let b1 = read_byte d.r and b2 = read_byte d.r and b3 = read_byte d.r in
        let word =
          Int32.logor
            (Int32.shift_left (Int32.of_int first) 24)
            (Int32.of_int ((b1 lsl 16) lor (b2 lsl 8) lor b3))
        in
        let tag = Int32.to_int (Int32.shift_right_logical word 30) in
        let hdr_opc =
          Int32.to_int (Int32.logand (Int32.shift_right_logical word 24) 0x3Fl)
        in
        if tag = 3 then begin
          let body = Int32.to_int (Int32.logand word 0xFFFFFFl) in
          ( hdr_opc,
            (body lsr 18) land 0x3F,
            [| (body lsr 12) land 0x3F; (body lsr 6) land 0x3F; body land 0x3F |] )
        end
        else begin
          let tyi =
            Int32.to_int (Int32.logand (Int32.shift_right_logical word 16) 0xFFl)
          in
          let ids =
            match tag with
            | 0 -> [||]
            | 1 -> [| Int32.to_int (Int32.logand word 0xFFFFl) |]
            | _ ->
              [| Int32.to_int (Int32.logand (Int32.shift_right_logical word 8) 0xFFl);
                 Int32.to_int (Int32.logand word 0xFFl) |]
          in
          (hdr_opc, tyi, ids)
        end
        end
      in
      let op = opcode_of_code opc in
      let ty_field = d.type_table.(tyi) in
      let ity, alloc_ty =
        match op with
        | Malloc | Alloca -> (Ltype.Pointer ty_field, Some ty_field)
        | _ -> (ty_field, None)
      in
      let i = mk_instr ?alloc_ty ~ty:ity op [] in
      append_instr blk i;
      pending := (i, op_ids) :: !pending
    done
  done;
  (* complete the id space with instruction results and blocks *)
  iter_instrs (fun i -> push (Vinstr i)) f;
  List.iter (fun blk -> push (Vblock blk)) (List.rev !blocks);
  let table = Array.of_list (List.rev !values) in
  List.iter
    (fun (i, ids) ->
      set_operands i (Array.map (fun id -> table.(id)) ids))
    !pending;
  (* symbol table *)
  let nnames = read_varint d.r in
  for _ = 1 to nnames do
    let id = read_varint d.r in
    let name = read_string d.r in
    match table.(id) with
    | Vinstr i -> i.iname <- name
    | Varg a -> a.aname <- name
    | _ -> ()
  done

let decode (src : string) : modul =
  let r = { src; pos = 0 } in
  if String.length src < 5 || String.sub src 0 4 <> magic then
    raise (Malformed "bad magic");
  r.pos <- 4;
  let v = read_byte r in
  if v <> version then raise (Malformed "unsupported version");
  let d =
    { r; type_table = [||]; globals = [||]; funcs = [||];
      m = mk_module "decoded" }
  in
  let ntypes = read_varint r in
  read_type_table d ntypes;
  d.m.mname <- read_string r;
  (* global headers *)
  let nglobals = read_varint r in
  let ginit_flags = Array.make nglobals false in
  d.globals <-
    Array.init nglobals (fun k ->
        let name = read_string r in
        let flags = read_varint r in
        let ty = d.type_table.(read_varint r) in
        ginit_flags.(k) <- flags land 4 <> 0;
        mk_gvar
          ~linkage:(if flags land 2 <> 0 then Internal else External)
          ~constant:(flags land 1 <> 0) ~name ~ty ());
  Array.iter (fun g -> add_gvar d.m g) d.globals;
  (* function headers *)
  let nfuncs = read_varint r in
  let fdefined = Array.make nfuncs false in
  d.funcs <-
    Array.init nfuncs (fun k ->
        let name = read_string r in
        let flags = read_varint r in
        let ret = d.type_table.(read_varint r) in
        let nparams = read_varint r in
        let params =
          List.init nparams (fun _ ->
              let pname = read_string r in
              let pty = d.type_table.(read_varint r) in
              (pname, pty))
        in
        fdefined.(k) <- flags land 4 = 0;
        mk_func
          ~linkage:(if flags land 1 <> 0 then Internal else External)
          ~varargs:(flags land 2 <> 0) ~name ~return:ret ~params ());
  Array.iter (fun f -> add_func d.m f) d.funcs;
  (* named types *)
  let nnamed = read_varint r in
  for _ = 1 to nnamed do
    let n = read_string r in
    let ty = d.type_table.(read_varint r) in
    define_type d.m n ty
  done;
  (* global initializers *)
  Array.iteri
    (fun k g -> if ginit_flags.(k) then g.ginit <- Some (read_const d))
    d.globals;
  (* function bodies *)
  Array.iteri (fun k f -> if fdefined.(k) then read_body d f) d.funcs;
  d.m

(* The bitcode container format (paper section 2.5 / 4.1.3).

   Layout:
     magic "LLVM"  version:u8
     type table    count:varint, then each type as a tagged record
     globals       count, then {name, flags, type-idx, init const?}
     functions     count, then {name, ret-type-idx, param-type-idxs,
                    varargs, linkage, body?}
   A function body carries a value pool (the constants and module-level
   objects its instructions reference) followed by basic blocks of
   instructions.

   Instructions use a one-word form whenever opcode, type index and
   operand ids all fit (the paper: "most instructions require only a
   single 32-bit word each").  bits 31-30 select the layout, bits 29-24
   hold the opcode:

     tag 0  zero operands;   type in bits 23-16
     tag 1  one operand;     type in bits 23-16, id in bits 15-0
     tag 2  two operands;    type in bits 23-16, ids in bits 15-8, 7-0
     tag 3  three operands;  type in bits 23-18, ids in 17-12, 11-6, 5-0

   Instruction words are stored big-endian so the first byte carries the
   tag and opcode.  The escape to the wide form is tag 0 with the
   reserved opcode 63 (first byte 0x3F): that byte is followed by the
   real opcode byte and varint-encoded type index, operand count and
   operand ids ("a 64-bit or larger encoding, as needed", section
   4.1.3). *)

let wide_escape_opcode = 63

let magic = "LLVM"
let version = 1

(* type record tags *)
let t_void = 0
let t_bool = 1
let t_integer = 2 (* + kind byte *)
let t_float = 3
let t_double = 4
let t_pointer = 5 (* + pointee idx *)
let t_array = 6 (* + length, elt idx *)
let t_struct = 7 (* + count, field idxs *)
let t_function = 8 (* + ret idx, varargs byte, count, param idxs *)
let t_named = 9 (* + name *)
let t_opaque = 10 (* + name *)

(* constant tags *)
let c_bool_false = 0
let c_bool_true = 1
let c_int = 2 (* + type idx + zigzag varint *)
let c_float = 3 (* + type idx + 8 bytes *)
let c_null = 4 (* + type idx *)
let c_undef = 5
let c_zero = 6
let c_array = 7 (* + elt type idx + count + consts *)
let c_struct = 8 (* + type idx + count + consts *)
let c_gvar = 9 (* + module global index *)
let c_func = 10 (* + module function index *)
let c_cast = 11 (* + type idx + const *)

(* value-pool entry tags (per-function operand sources) *)
let v_const = 0
let v_global = 1
let v_function = 2

let opcode_code (op : Llvm_ir.Ir.opcode) : int =
  let rec index k = function
    | [] -> assert false
    | o :: _ when o = op -> k
    | _ :: rest -> index (k + 1) rest
  in
  index 0 Llvm_ir.Ir.all_opcodes

let opcode_of_code (k : int) : Llvm_ir.Ir.opcode =
  List.nth Llvm_ir.Ir.all_opcodes k

let int_kind_code : Llvm_ir.Ltype.int_kind -> int = function
  | Sbyte -> 0
  | Ubyte -> 1
  | Short -> 2
  | Ushort -> 3
  | Int -> 4
  | Uint -> 5
  | Long -> 6
  | Ulong -> 7

let int_kind_of_code : int -> Llvm_ir.Ltype.int_kind = function
  | 0 -> Sbyte
  | 1 -> Ubyte
  | 2 -> Short
  | 3 -> Ushort
  | 4 -> Int
  | 5 -> Uint
  | 6 -> Long
  | 7 -> Ulong
  | _ -> invalid_arg "bad integer kind"

(* -- primitive writers ---------------------------------------------------- *)

let write_varint (b : Buffer.t) (v : int) =
  let rec go v =
    if v < 0x80 then Buffer.add_char b (Char.chr v)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (v land 0x7F)));
      go (v lsr 7)
    end
  in
  if v < 0 then invalid_arg "write_varint: negative";
  go v

let zigzag (v : int64) : int64 =
  Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63)

let unzigzag (v : int64) : int64 =
  Int64.logxor (Int64.shift_right_logical v 1) (Int64.neg (Int64.logand v 1L))

let write_varint64 (b : Buffer.t) (v : int64) =
  let rec go v =
    if Int64.unsigned_compare v 0x80L < 0 then
      Buffer.add_char b (Char.chr (Int64.to_int v))
    else begin
      Buffer.add_char b
        (Char.chr (0x80 lor Int64.to_int (Int64.logand v 0x7FL)));
      go (Int64.shift_right_logical v 7)
    end
  in
  go v

let write_string (b : Buffer.t) (s : string) =
  write_varint b (String.length s);
  Buffer.add_string b s

let write_u32 (b : Buffer.t) (v : int32) =
  Buffer.add_char b (Char.chr (Int32.to_int (Int32.logand v 0xFFl)));
  Buffer.add_char b
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 8) 0xFFl)));
  Buffer.add_char b
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 16) 0xFFl)));
  Buffer.add_char b
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 24) 0xFFl)))

let write_u32_be (b : Buffer.t) (v : int32) =
  Buffer.add_char b
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 24) 0xFFl)));
  Buffer.add_char b
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 16) 0xFFl)));
  Buffer.add_char b
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 8) 0xFFl)));
  Buffer.add_char b (Char.chr (Int32.to_int (Int32.logand v 0xFFl)))

let write_f64 (b : Buffer.t) (f : float) =
  let bits = Int64.bits_of_float f in
  for k = 0 to 7 do
    Buffer.add_char b
      (Char.chr
         (Int64.to_int
            (Int64.logand (Int64.shift_right_logical bits (8 * k)) 0xFFL)))
  done

(* -- primitive readers ------------------------------------------------------ *)

type reader = { src : string; mutable pos : int }

exception Malformed of string

let read_byte (r : reader) : int =
  if r.pos >= String.length r.src then raise (Malformed "truncated");
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let read_varint (r : reader) : int =
  let rec go shift acc =
    let c = read_byte r in
    let acc = acc lor ((c land 0x7F) lsl shift) in
    if c land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let read_varint64 (r : reader) : int64 =
  let rec go shift acc =
    let c = read_byte r in
    let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (c land 0x7F)) shift) in
    if c land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0L

let read_string (r : reader) : string =
  let n = read_varint r in
  if r.pos + n > String.length r.src then raise (Malformed "truncated string");
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let read_u32 (r : reader) : int32 =
  let b0 = read_byte r and b1 = read_byte r and b2 = read_byte r and b3 = read_byte r in
  Int32.logor
    (Int32.of_int (b0 lor (b1 lsl 8) lor (b2 lsl 16)))
    (Int32.shift_left (Int32.of_int b3) 24)

let read_u32_be (r : reader) : int32 =
  let b0 = read_byte r and b1 = read_byte r and b2 = read_byte r and b3 = read_byte r in
  Int32.logor
    (Int32.shift_left (Int32.of_int b0) 24)
    (Int32.of_int ((b1 lsl 16) lor (b2 lsl 8) lor b3))

let read_f64 (r : reader) : float =
  let bits = ref 0L in
  for k = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (read_byte r)) (8 * k))
  done;
  Int64.float_of_bits !bits

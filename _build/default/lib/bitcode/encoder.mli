(** Bitcode encoder (paper sections 2.5 and 4.1.3): in-memory module to
    compact binary image.  Most instructions occupy a single 32-bit
    word; the rest use a wide escape.  See {!Format} for the layout. *)

type stats = {
  mutable one_word_instrs : int;
  mutable wide_instrs : int;
  mutable total_bytes : int;
}

(** Encode a module.  [strip:true] drops local symbol names (argument,
    instruction and block names), like a stripped executable; the code
    itself is unchanged. *)
val encode : ?strip:bool -> Llvm_ir.Ir.modul -> string * stats

(** Constant folding over the instruction set.

    The semantics here match the execution engine exactly; the property
    tests in test/ check this by construction.  Folds return [None]
    when an operation cannot be evaluated (division by zero, unknown
    addresses, ...). *)

(** Zero-extend the stored representation of an integer to [bits]. *)
val to_unsigned : int -> int64 -> int64

val int_binop : Ltype.int_kind -> Ir.opcode -> int64 -> int64 -> int64 option
val float_binop : Ir.opcode -> float -> float -> float option
val fold_binop : Ir.opcode -> Ir.const -> Ir.const -> Ir.const option
val int_cmp : Ltype.int_kind -> Ir.opcode -> int64 -> int64 -> bool
val float_cmp : Ir.opcode -> float -> float -> bool
val fold_cmp : Ir.opcode -> Ir.const -> Ir.const -> Ir.const option
val const_as_int : Ir.const -> int64 option
val fold_cast : Ir.const -> Ltype.t -> Ir.const option
val fold_select : Ir.const -> Ir.const -> Ir.const -> Ir.const option

(** Fold an instruction whose operands are all constants. *)
val fold_instr : Ltype.table -> Ir.instr -> Ir.const option

(** Algebraic identities that need only one constant operand:
    x+0, x*1, x*0, x-x, x&x, ... *)
val simplify_instr : Ir.instr -> Ir.value option

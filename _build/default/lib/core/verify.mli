(** Structural verifier for the in-memory representation.

    Checks the invariants every pass may assume: exactly one terminator
    per block (at the end), phis clustered at block heads with one
    incoming value per CFG predecessor, operand types obeying the
    instruction type rules of paper section 2.2, and unique module-level
    names.  SSA dominance is checked separately by
    [Llvm_analysis.Ssa_check]. *)

type error = { where : string; what : string }

val verify_func : Ltype.table -> error list ref -> Ir.func -> unit

(** All violations found in the module, in program order. *)
val verify_module : Ir.modul -> error list

val pp_error : Format.formatter -> error -> unit

exception Invalid_module of string

(** @raise Invalid_module when the module has any violation. *)
val assert_valid : Ir.modul -> unit

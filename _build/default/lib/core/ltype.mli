(** The language-independent type system (paper section 2.2).

    Primitive types have predefined sizes; the four derived types are
    pointers, arrays, structures and functions.  Recursive types are
    expressed with {!Named} references resolved through a per-module
    {!table}. *)

(** The eight integer kinds: signed/unsigned at 8, 16, 32 and 64 bits. *)
type int_kind =
  | Sbyte
  | Ubyte
  | Short
  | Ushort
  | Int
  | Uint
  | Long
  | Ulong

type t =
  | Void
  | Bool
  | Integer of int_kind
  | Float
  | Double
  | Pointer of t
  | Array of int * t  (** fixed length, element type *)
  | Struct of t list
  | Function of t * t list * bool  (** return, parameters, varargs *)
  | Named of string  (** reference into a {!table}; allows recursion *)
  | Opaque of string  (** forward-declared type with unknown body *)

(** A mapping from the names used by {!Named} to their definitions. *)
type table = (string, t) Hashtbl.t

val create_table : unit -> table

(** {1 Convenient constructors} *)

val void : t
val bool_ : t
val sbyte : t
val ubyte : t
val short : t
val ushort : t
val int_ : t
val uint : t
val long : t
val ulong : t
val float_ : t
val double : t
val pointer : t -> t
val array : int -> t -> t
val struct_ : t list -> t
val func : ?varargs:bool -> t -> t list -> t

(** {1 Classification} *)

val is_signed : int_kind -> bool

(** Bit width of an integer kind (8, 16, 32 or 64). *)
val int_bits : int_kind -> int

val is_integer : t -> bool
val is_floating : t -> bool
val is_pointer : t -> bool
val is_arithmetic : t -> bool

(** First-class values can live in SSA registers: bool, integers,
    floats and pointers (paper section 2.1). *)
val is_first_class : t -> bool

val is_aggregate : t -> bool

(** Raised when a {!Named} or {!Opaque} type has no definition in the
    table being consulted. *)
exception Unresolved of string

(** Follow [Named] links until a structural constructor appears.
    @raise Unresolved when a name has no definition. *)
val resolve : table -> t -> t

(** {1 Size and layout}

    A conventional 64-bit layout: pointers are 8 bytes and structs pad
    each field to its alignment.  The code generators, the execution
    engine and constant-offset folding all share this model. *)

val align_of : table -> t -> int
val round_up : int -> int -> int
val size_of : table -> t -> int

(** Byte offset of field [idx] within a struct type. *)
val field_offset : table -> t -> int -> int

(** Type of field [idx] within a struct type. *)
val field_type : table -> t -> int -> t

(** Structural equality up to [Named] resolution; recursive types
    compare without divergence. *)
val equal : table -> t -> t -> bool

(** {1 Printing} *)

val string_of_int_kind : int_kind -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

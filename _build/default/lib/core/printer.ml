(* The plain-text representation (paper section 2.5).

   Printing is lossless with respect to the in-memory form: the parser in
   lib/asm accepts exactly this syntax and reconstructs an isomorphic
   module.  Unnamed values receive sequential slot names; named values are
   uniquified with a numeric suffix when two share a name. *)

open Ir

(* Per-function naming of instructions, arguments and blocks. *)
type namer = {
  names : (int, string) Hashtbl.t; (* value id -> printed name *)
  taken : (string, unit) Hashtbl.t;
  mutable counter : int;
}

let make_namer () =
  { names = Hashtbl.create 64; taken = Hashtbl.create 64; counter = 0 }

let fresh_name (n : namer) (base : string) =
  if base = "" then (
    let rec next () =
      let cand = string_of_int n.counter in
      n.counter <- n.counter + 1;
      if Hashtbl.mem n.taken cand then next () else cand
    in
    next ())
  else if not (Hashtbl.mem n.taken base) then base
  else
    let rec go k =
      let cand = Printf.sprintf "%s.%d" base k in
      if Hashtbl.mem n.taken cand then go (k + 1) else cand
    in
    go 1

let assign (n : namer) id base =
  let name = fresh_name n base in
  Hashtbl.replace n.names id name;
  Hashtbl.replace n.taken name ();
  name

(* Pre-assign names to all args, blocks and value-producing instructions
   of a function, in program order, so that forward references print the
   final name. *)
let name_function (f : func) : namer =
  let n = make_namer () in
  List.iter (fun a -> ignore (assign n a.aid a.aname)) f.fargs;
  List.iter
    (fun b ->
      ignore (assign n b.bid (if b.bname = "" then "bb" else b.bname));
      List.iter
        (fun i ->
          if i.ity <> Ltype.Void then ignore (assign n i.iid i.iname))
        b.instrs)
    f.fblocks;
  n

let lookup (n : namer) id =
  match Hashtbl.find_opt n.names id with
  | Some s -> s
  | None -> Printf.sprintf "?%d" id

(* -- Constants ----------------------------------------------------------- *)

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%h" f

let rec pp_const fmt (c : const) =
  match c with
  | Cbool true -> Fmt.string fmt "true"
  | Cbool false -> Fmt.string fmt "false"
  | Cint (_, v) -> Fmt.pf fmt "%Ld" v
  | Cfloat (_, f) -> Fmt.string fmt (float_literal f)
  | Cnull _ -> Fmt.string fmt "null"
  | Cundef _ -> Fmt.string fmt "undef"
  | Czero _ -> Fmt.string fmt "zeroinitializer"
  | Carray (elt, elts) ->
    Fmt.pf fmt "[ %a ]"
      Fmt.(list ~sep:(any ", ") pp_typed_const)
      (List.map (fun e -> (elt, e)) elts)
  | Cstruct (ty, elts) ->
    let field_tys =
      match ty with Ltype.Struct fs -> fs | _ -> List.map (fun _ -> Ltype.Void) elts
    in
    Fmt.pf fmt "{ %a }"
      Fmt.(list ~sep:(any ", ") pp_typed_const)
      (List.combine field_tys elts)
  | Cgvar g -> Fmt.pf fmt "%%%s" g.gname
  | Cfunc f -> Fmt.pf fmt "%%%s" f.fname
  | Ccast (ty, c) -> Fmt.pf fmt "cast(%a to %a)" pp_typed_const
      (type_of_const_for_print c, c) Ltype.pp ty

and type_of_const_for_print c =
  (* Only used in contexts where Named resolution is unnecessary. *)
  let table = Ltype.create_table () in
  type_of_const table c

and pp_typed_const fmt ((ty, c) : Ltype.t * const) =
  Fmt.pf fmt "%a %a" Ltype.pp ty pp_const c

(* -- Operands ------------------------------------------------------------ *)

let pp_value (n : namer) fmt (v : value) =
  match v with
  | Vconst c -> pp_const fmt c
  | Vinstr i -> Fmt.pf fmt "%%%s" (lookup n i.iid)
  | Varg a -> Fmt.pf fmt "%%%s" (lookup n a.aid)
  | Vglobal g -> Fmt.pf fmt "%%%s" g.gname
  | Vfunc f -> Fmt.pf fmt "%%%s" f.fname
  | Vblock b -> Fmt.pf fmt "label %%%s" (lookup n b.bid)

let pp_typed_value table (n : namer) fmt (v : value) =
  match v with
  | Vblock _ -> pp_value n fmt v
  | _ -> Fmt.pf fmt "%a %a" Ltype.pp (type_of table v) (pp_value n) v

(* -- Instructions -------------------------------------------------------- *)

let pp_instr table (n : namer) fmt (i : instr) =
  let v = pp_value n in
  let tv = pp_typed_value table n in
  let result () =
    if i.ity <> Ltype.Void then Fmt.pf fmt "%%%s = " (lookup n i.iid)
  in
  match i.iop with
  | Ret ->
    if Array.length i.operands = 0 then Fmt.string fmt "ret void"
    else Fmt.pf fmt "ret %a" tv i.operands.(0)
  | Br ->
    if Array.length i.operands = 1 then Fmt.pf fmt "br %a" v i.operands.(0)
    else
      Fmt.pf fmt "br %a, %a, %a" tv i.operands.(0) v i.operands.(1) v
        i.operands.(2)
  | Switch ->
    Fmt.pf fmt "switch %a, %a [" tv i.operands.(0) v i.operands.(1);
    List.iter
      (fun (c, blk) ->
        Fmt.pf fmt " %a %a, label %%%s"
          Ltype.pp (type_of table i.operands.(0))
          pp_const c (lookup n blk.bid))
      (switch_cases i);
    Fmt.string fmt " ]"
  | Invoke ->
    result ();
    Fmt.pf fmt "invoke %a %a(%a) to %a unwind to %a" Ltype.pp i.ity v
      i.operands.(0)
      Fmt.(list ~sep:(any ", ") tv)
      (call_args i) v i.operands.(1) v i.operands.(2)
  | Unwind -> Fmt.string fmt "unwind"
  | (Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | SetEQ | SetNE
    | SetLT | SetGT | SetLE | SetGE) as op ->
    result ();
    Fmt.pf fmt "%s %a %a, %a" (opcode_name op) Ltype.pp
      (type_of table i.operands.(0))
      (pp_value n) i.operands.(0) (pp_value n) i.operands.(1)
  | Malloc | Alloca ->
    result ();
    let elt = match i.alloc_ty with Some t -> t | None -> Ltype.Void in
    Fmt.pf fmt "%s %a" (opcode_name i.iop) Ltype.pp elt;
    if Array.length i.operands > 0 then Fmt.pf fmt ", %a" tv i.operands.(0)
  | Free -> Fmt.pf fmt "free %a" tv i.operands.(0)
  | Load ->
    result ();
    Fmt.pf fmt "load %a" tv i.operands.(0)
  | Store ->
    Fmt.pf fmt "store %a, %a" tv i.operands.(0) tv i.operands.(1)
  | Gep ->
    result ();
    Fmt.pf fmt "getelementptr %a" tv i.operands.(0);
    Array.iteri
      (fun k op -> if k > 0 then Fmt.pf fmt ", %a" tv op)
      i.operands
  | Phi ->
    result ();
    Fmt.pf fmt "phi %a " Ltype.pp i.ity;
    let first = ref true in
    List.iter
      (fun (value, blk) ->
        if not !first then Fmt.string fmt ", ";
        first := false;
        Fmt.pf fmt "[ %a, %%%s ]" (pp_value n) value (lookup n blk.bid))
      (phi_incoming i)
  | Cast ->
    result ();
    Fmt.pf fmt "cast %a to %a" tv i.operands.(0) Ltype.pp i.ity
  | Call ->
    result ();
    Fmt.pf fmt "call %a %a(%a)" Ltype.pp i.ity v i.operands.(0)
      Fmt.(list ~sep:(any ", ") tv)
      (call_args i)
  | Select ->
    result ();
    Fmt.pf fmt "select %a, %a, %a" tv i.operands.(0) tv i.operands.(1) tv
      i.operands.(2)

(* -- Functions, globals, modules ------------------------------------------ *)

let pp_linkage fmt = function
  | Internal -> Fmt.string fmt "internal "
  | External -> Fmt.string fmt ""

let pp_func table fmt (f : func) =
  if is_declaration f then
    Fmt.pf fmt "declare %a %%%s(%a%s)@." Ltype.pp f.freturn f.fname
      Fmt.(list ~sep:(any ", ") Ltype.pp)
      (List.map (fun a -> a.aty) f.fargs)
      (if f.fvarargs then if f.fargs = [] then "..." else ", ..." else "")
  else begin
    let n = name_function f in
    Fmt.pf fmt "%a%a %%%s(%a%s) {@." pp_linkage f.flinkage Ltype.pp f.freturn
      f.fname
      Fmt.(
        list ~sep:(any ", ") (fun fmt a ->
            Fmt.pf fmt "%a %%%s" Ltype.pp a.aty (lookup n a.aid)))
      f.fargs
      (if f.fvarargs then if f.fargs = [] then "..." else ", ..." else "");
    List.iter
      (fun b ->
        Fmt.pf fmt "%s:@." (lookup n b.bid);
        List.iter (fun i -> Fmt.pf fmt "  %a@." (pp_instr table n) i) b.instrs)
      f.fblocks;
    Fmt.pf fmt "}@."
  end

let pp_gvar fmt (g : gvar) =
  let kind = if g.gconstant then "constant" else "global" in
  match g.ginit with
  | Some init ->
    Fmt.pf fmt "%%%s = %a%s %a@." g.gname pp_linkage g.glinkage kind
      pp_typed_const (g.gty, init)
  | None -> Fmt.pf fmt "%%%s = external %s %a@." g.gname kind Ltype.pp g.gty

let pp_module fmt (m : modul) =
  Fmt.pf fmt "; module %s@." m.mname;
  let types =
    Hashtbl.fold (fun name ty acc -> (name, ty) :: acc) m.mtypes []
    |> List.sort compare
  in
  List.iter (fun (name, ty) -> Fmt.pf fmt "%%%s = type %a@." name Ltype.pp ty) types;
  if types <> [] then Fmt.pf fmt "@.";
  List.iter (fun g -> pp_gvar fmt g) m.mglobals;
  if m.mglobals <> [] then Fmt.pf fmt "@.";
  List.iter (fun f -> Fmt.pf fmt "%a@." (pp_func m.mtypes) f) m.mfuncs

let module_to_string m = Fmt.str "%a" pp_module m
let func_to_string table f = Fmt.str "%a" (pp_func table) f
let instr_to_string table f i =
  let n = name_function f in
  Fmt.str "%a" (pp_instr table n) i

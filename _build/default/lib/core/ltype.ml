(* The language-independent type system (paper section 2.2).

   Primitive types have predefined sizes; the four derived types are
   pointers, arrays, structures and functions.  Recursive types (e.g. a
   linked-list node containing a pointer to itself) are expressed with
   [Named] references that a module's type table resolves; [Opaque] stands
   for a forward-declared type whose body is not (yet) known. *)

type int_kind =
  | Sbyte
  | Ubyte
  | Short
  | Ushort
  | Int
  | Uint
  | Long
  | Ulong

type t =
  | Void
  | Bool
  | Integer of int_kind
  | Float
  | Double
  | Pointer of t
  | Array of int * t
  | Struct of t list
  | Function of t * t list * bool (* return, params, varargs *)
  | Named of string
  | Opaque of string

(* A type table maps the names used by [Named] to their definitions.  Both
   modules and stand-alone tools carry one. *)
type table = (string, t) Hashtbl.t

let create_table () : table = Hashtbl.create 16

(* -- Convenient aliases ------------------------------------------------ *)

let void = Void
let bool_ = Bool
let sbyte = Integer Sbyte
let ubyte = Integer Ubyte
let short = Integer Short
let ushort = Integer Ushort
let int_ = Integer Int
let uint = Integer Uint
let long = Integer Long
let ulong = Integer Ulong
let float_ = Float
let double = Double
let pointer t = Pointer t
let array n t = Array (n, t)
let struct_ fields = Struct fields
let func ?(varargs = false) ret params = Function (ret, params, varargs)

(* -- Classification ---------------------------------------------------- *)

let is_signed = function
  | Sbyte | Short | Int | Long -> true
  | Ubyte | Ushort | Uint | Ulong -> false

let int_bits = function
  | Sbyte | Ubyte -> 8
  | Short | Ushort -> 16
  | Int | Uint -> 32
  | Long | Ulong -> 64

let is_integer = function Integer _ -> true | _ -> false
let is_floating = function Float | Double -> true | _ -> false
let is_pointer = function Pointer _ -> true | _ -> false

let is_arithmetic = function
  | Integer _ | Float | Double -> true
  | Void | Bool | Pointer _ | Array _ | Struct _ | Function _ | Named _
  | Opaque _ ->
    false

let is_first_class = function
  | Bool | Integer _ | Float | Double | Pointer _ -> true
  | Void | Array _ | Struct _ | Function _ | Named _ | Opaque _ -> false

let is_aggregate = function Array _ | Struct _ -> true | _ -> false

exception Unresolved of string

(* Follow [Named] links until a structural type appears. *)
let rec resolve (table : table) t =
  match t with
  | Named n -> (
    match Hashtbl.find_opt table n with
    | Some t' -> resolve table t'
    | None -> raise (Unresolved n))
  | t -> t

(* -- Size and alignment model ------------------------------------------

   A conventional 64-bit layout: pointers are 8 bytes, structs are padded
   so each field sits at a multiple of its alignment, and the struct is
   padded to a multiple of its own alignment.  The code generators, the
   execution engine and getelementptr constant folding all share this
   model. *)

let rec align_of table t =
  match resolve table t with
  | Void -> 1
  | Bool -> 1
  | Integer k -> int_bits k / 8
  | Float -> 4
  | Double -> 8
  | Pointer _ | Function _ -> 8
  | Array (_, elt) -> align_of table elt
  | Struct fields ->
    List.fold_left (fun a f -> max a (align_of table f)) 1 fields
  | Named n | Opaque n -> raise (Unresolved n)

let round_up n a = (n + a - 1) / a * a

let rec size_of table t =
  match resolve table t with
  | Void -> 0
  | Bool -> 1
  | Integer k -> int_bits k / 8
  | Float -> 4
  | Double -> 8
  | Pointer _ | Function _ -> 8
  | Array (n, elt) -> n * size_of table elt
  | Struct fields ->
    let body =
      List.fold_left
        (fun off f -> round_up off (align_of table f) + size_of table f)
        0 fields
    in
    round_up body (align_of table (Struct fields))
  | Named n | Opaque n -> raise (Unresolved n)

(* Byte offset of field [idx] within struct type [t]. *)
let field_offset table t idx =
  match resolve table t with
  | Struct fields ->
    let rec go i off = function
      | [] -> invalid_arg "Ltype.field_offset: index out of range"
      | f :: rest ->
        let off = round_up off (align_of table f) in
        if i = idx then off else go (i + 1) (off + size_of table f) rest
    in
    go 0 0 fields
  | _ -> invalid_arg "Ltype.field_offset: not a struct"

let field_type table t idx =
  match resolve table t with
  | Struct fields -> (
    match List.nth_opt fields idx with
    | Some f -> f
    | None -> invalid_arg "Ltype.field_type: index out of range")
  | _ -> invalid_arg "Ltype.field_type: not a struct"

(* -- Structural equality up to Named resolution ------------------------

   Uses an assumption set so that recursive types compare without
   divergence: once we assume [Named a = Named b] we do not re-expand. *)
let equal table a b =
  let assumed = Hashtbl.create 8 in
  let rec eq a b =
    match (a, b) with
    | Named x, Named y when x = y -> true
    | (Named _, _ | _, Named _) -> (
      let key =
        match (a, b) with
        | Named x, Named y -> Some (x, y)
        | _ -> None
      in
      match key with
      | Some k when Hashtbl.mem assumed k -> true
      | _ ->
        (match key with Some k -> Hashtbl.replace assumed k () | None -> ());
        eq (resolve table a) (resolve table b))
    | Void, Void | Bool, Bool | Float, Float | Double, Double -> true
    | Integer k1, Integer k2 -> k1 = k2
    | Pointer t1, Pointer t2 -> eq t1 t2
    | Array (n1, t1), Array (n2, t2) -> n1 = n2 && eq t1 t2
    | Struct f1, Struct f2 ->
      List.length f1 = List.length f2 && List.for_all2 eq f1 f2
    | Function (r1, p1, v1), Function (r2, p2, v2) ->
      v1 = v2 && eq r1 r2
      && List.length p1 = List.length p2
      && List.for_all2 eq p1 p2
    | Opaque x, Opaque y -> x = y
    | ( ( Void | Bool | Integer _ | Float | Double | Pointer _ | Array _
        | Struct _ | Function _ | Opaque _ ),
        _ ) ->
      false
  in
  eq a b

(* -- Printing (the plain-text representation of section 2.5) ----------- *)

let string_of_int_kind = function
  | Sbyte -> "sbyte"
  | Ubyte -> "ubyte"
  | Short -> "short"
  | Ushort -> "ushort"
  | Int -> "int"
  | Uint -> "uint"
  | Long -> "long"
  | Ulong -> "ulong"

let rec pp fmt t =
  match t with
  | Void -> Fmt.string fmt "void"
  | Bool -> Fmt.string fmt "bool"
  | Integer k -> Fmt.string fmt (string_of_int_kind k)
  | Float -> Fmt.string fmt "float"
  | Double -> Fmt.string fmt "double"
  | Pointer t -> Fmt.pf fmt "%a*" pp t
  | Array (n, t) -> Fmt.pf fmt "[%d x %a]" n pp t
  | Struct fields -> Fmt.pf fmt "{ %a }" Fmt.(list ~sep:(any ", ") pp) fields
  | Function (ret, params, varargs) ->
    Fmt.pf fmt "%a (%a%s)" pp ret
      Fmt.(list ~sep:(any ", ") pp)
      params
      (if varargs then if params = [] then "..." else ", ..." else "")
  | Named n -> Fmt.pf fmt "%%%s" n
  | Opaque n -> Fmt.pf fmt "opaque.%s" n

let to_string t = Fmt.str "%a" pp t

(** The plain-text representation (paper section 2.5).

    Printing is lossless with respect to the in-memory form: the parser
    in [Llvm_asm] accepts exactly this syntax and reconstructs an
    isomorphic module.  Unnamed values receive sequential slot names;
    colliding names are uniquified with a numeric suffix. *)

(** Per-function naming of instructions, arguments and blocks. *)
type namer

val name_function : Ir.func -> namer
val lookup : namer -> int -> string

val pp_const : Format.formatter -> Ir.const -> unit
val pp_typed_const : Format.formatter -> Ltype.t * Ir.const -> unit
val pp_value : namer -> Format.formatter -> Ir.value -> unit
val pp_instr : Ltype.table -> namer -> Format.formatter -> Ir.instr -> unit
val pp_func : Ltype.table -> Format.formatter -> Ir.func -> unit
val pp_gvar : Format.formatter -> Ir.gvar -> unit
val pp_module : Format.formatter -> Ir.modul -> unit

val module_to_string : Ir.modul -> string
val func_to_string : Ltype.table -> Ir.func -> string
val instr_to_string : Ltype.table -> Ir.func -> Ir.instr -> string

(** The positioned instruction builder — the primary construction API.

    A builder holds an insertion point (a basic block) and appends
    instructions to it.  Each [build_*] helper computes the result type
    from its operands, so clients only supply types where the
    instruction set genuinely requires one (cast targets, allocation
    element types). *)

type t

(** A fresh builder with no insertion point; [table] resolves named
    types in geps (defaults to an empty table). *)
val create : ?table:Ltype.table -> unit -> t

(** A builder over the module's own type table. *)
val for_module : Ir.modul -> t

val position_at_end : t -> Ir.block -> unit

(** @raise Invalid_argument when no insertion point is set. *)
val insertion_block : t -> Ir.block

(** Append a pre-built instruction at the insertion point. *)
val insert : t -> Ir.instr -> Ir.instr

(** {1 Binary operations and comparisons} *)

val build_binop : t -> Ir.opcode -> ?name:string -> Ir.value -> Ir.value -> Ir.value
val build_add : t -> ?name:string -> Ir.value -> Ir.value -> Ir.value
val build_sub : t -> ?name:string -> Ir.value -> Ir.value -> Ir.value
val build_mul : t -> ?name:string -> Ir.value -> Ir.value -> Ir.value
val build_div : t -> ?name:string -> Ir.value -> Ir.value -> Ir.value
val build_rem : t -> ?name:string -> Ir.value -> Ir.value -> Ir.value
val build_and : t -> ?name:string -> Ir.value -> Ir.value -> Ir.value
val build_or : t -> ?name:string -> Ir.value -> Ir.value -> Ir.value
val build_xor : t -> ?name:string -> Ir.value -> Ir.value -> Ir.value
val build_shl : t -> ?name:string -> Ir.value -> Ir.value -> Ir.value
val build_shr : t -> ?name:string -> Ir.value -> Ir.value -> Ir.value
val build_cmp : t -> Ir.opcode -> ?name:string -> Ir.value -> Ir.value -> Ir.value
val build_seteq : t -> ?name:string -> Ir.value -> Ir.value -> Ir.value
val build_setne : t -> ?name:string -> Ir.value -> Ir.value -> Ir.value
val build_setlt : t -> ?name:string -> Ir.value -> Ir.value -> Ir.value
val build_setgt : t -> ?name:string -> Ir.value -> Ir.value -> Ir.value
val build_setle : t -> ?name:string -> Ir.value -> Ir.value -> Ir.value
val build_setge : t -> ?name:string -> Ir.value -> Ir.value -> Ir.value

(** [not]/[neg] are pseudo-instructions expanded to [xor]/[sub]
    (paper footnote 3). *)
val build_not : t -> ?name:string -> Ir.value -> Ir.value

val build_neg : t -> ?name:string -> Ir.value -> Ir.value

(** {1 Memory} *)

val build_alloca : t -> ?name:string -> ?count:Ir.value -> Ltype.t -> Ir.value
val build_malloc : t -> ?name:string -> ?count:Ir.value -> Ltype.t -> Ir.value
val build_free : t -> Ir.value -> Ir.value
val build_load : t -> ?name:string -> Ir.value -> Ir.value
val build_store : t -> Ir.value -> Ir.value -> Ir.value

(** Result type of a gep over the given pointer type and index values
    (paper section 2.2).
    @raise Invalid_argument on malformed indexing. *)
val gep_result_type : Ltype.table -> Ltype.t -> Ir.value list -> Ltype.t

val build_gep : t -> ?name:string -> Ir.value -> Ir.value list -> Ir.value

(** Gep with constant indices written as plain ints: the first index
    uses [long], struct fields use [ubyte], as in the paper's example. *)
val build_gep_const : t -> ?name:string -> Ir.value -> int list -> Ir.value

(** {1 Other instructions} *)

val build_cast : t -> ?name:string -> Ir.value -> Ltype.t -> Ir.value
val build_select : t -> ?name:string -> Ir.value -> Ir.value -> Ir.value -> Ir.value

(** Phis are always placed at the head of the insertion block. *)
val build_phi : t -> ?name:string -> Ltype.t -> (Ir.value * Ir.block) list -> Ir.value

val return_type_of_callee : t -> Ir.value -> Ltype.t
val build_call : t -> ?name:string -> Ir.value -> Ir.value list -> Ir.value

(** {1 Terminators} *)

val build_ret : t -> Ir.value option -> Ir.value
val build_br : t -> Ir.block -> Ir.value
val build_condbr : t -> Ir.value -> Ir.block -> Ir.block -> Ir.value
val build_switch : t -> Ir.value -> Ir.block -> (Ir.const * Ir.block) list -> Ir.value

val build_invoke :
  t ->
  ?name:string ->
  Ir.value ->
  Ir.value list ->
  normal:Ir.block ->
  unwind:Ir.block ->
  Ir.value

val build_unwind : t -> Ir.value

(** {1 Function scaffolding} *)

(** Create a function with an entry block, add it to the module, and
    position the builder at the entry. *)
val start_function :
  t ->
  Ir.modul ->
  ?linkage:Ir.linkage ->
  ?varargs:bool ->
  string ->
  Ltype.t ->
  (string * Ltype.t) list ->
  Ir.func

val append_new_block : t -> Ir.func -> string -> Ir.block

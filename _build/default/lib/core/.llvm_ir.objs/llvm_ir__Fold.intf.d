lib/core/fold.mli: Ir Ltype

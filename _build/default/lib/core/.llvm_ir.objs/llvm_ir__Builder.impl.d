lib/core/builder.ml: Fmt Int64 Ir List Ltype

lib/core/ltype.ml: Fmt Hashtbl List

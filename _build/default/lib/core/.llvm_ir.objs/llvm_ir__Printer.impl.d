lib/core/printer.ml: Array Float Fmt Hashtbl Ir List Ltype Printf

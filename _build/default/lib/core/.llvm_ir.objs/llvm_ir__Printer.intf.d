lib/core/printer.mli: Format Ir Ltype

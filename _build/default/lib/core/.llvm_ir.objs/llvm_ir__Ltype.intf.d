lib/core/ltype.mli: Format Hashtbl

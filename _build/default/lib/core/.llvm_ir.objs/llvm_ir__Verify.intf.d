lib/core/verify.mli: Format Ir Ltype

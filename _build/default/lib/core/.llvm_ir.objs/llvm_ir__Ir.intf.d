lib/core/ir.mli: Ltype

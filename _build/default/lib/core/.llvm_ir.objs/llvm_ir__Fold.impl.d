lib/core/fold.ml: Array Float Int32 Int64 Ir Ltype Option

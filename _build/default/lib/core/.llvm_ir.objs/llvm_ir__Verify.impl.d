lib/core/verify.ml: Array Builder Fmt Hashtbl Ir List Ltype Printf String

lib/core/builder.mli: Ir Ltype

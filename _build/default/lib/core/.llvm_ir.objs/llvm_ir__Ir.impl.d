lib/core/ir.ml: Array Hashtbl Int64 List Ltype

(* A positioned instruction builder, the primary construction API.

   The builder holds an insertion point (a basic block) and appends
   instructions to it.  Each [build_*] helper computes the result type of
   the instruction from its operands, so front-ends only supply types
   where the instruction set genuinely requires one (cast targets,
   allocation element types). *)

open Ir

type t = {
  mutable where : block option;
  table : Ltype.table; (* for resolving named types in geps *)
}

let create ?(table : Ltype.table option) () =
  { where = None;
    table = (match table with Some t -> t | None -> Ltype.create_table ()) }

let for_module (m : modul) = { where = None; table = m.mtypes }

let position_at_end (b : t) (blk : block) = b.where <- Some blk

let insertion_block (b : t) =
  match b.where with
  | Some blk -> blk
  | None -> invalid_arg "Builder: no insertion point set"

let insert (b : t) (i : instr) =
  append_instr (insertion_block b) i;
  i

let ty_of (b : t) v = Ir.type_of b.table v

(* -- Binary operations -------------------------------------------------- *)

let build_binop (b : t) op ?(name = "") lhs rhs =
  let ty = ty_of b lhs in
  instr_value (insert b (mk_instr ~name ~ty op [ lhs; rhs ]))

let build_add b ?name l r = build_binop b Add ?name l r
let build_sub b ?name l r = build_binop b Sub ?name l r
let build_mul b ?name l r = build_binop b Mul ?name l r
let build_div b ?name l r = build_binop b Div ?name l r
let build_rem b ?name l r = build_binop b Rem ?name l r
let build_and b ?name l r = build_binop b And ?name l r
let build_or b ?name l r = build_binop b Or ?name l r
let build_xor b ?name l r = build_binop b Xor ?name l r
let build_shl b ?name l r = build_binop b Shl ?name l r
let build_shr b ?name l r = build_binop b Shr ?name l r

let build_cmp (b : t) op ?(name = "") lhs rhs =
  instr_value (insert b (mk_instr ~name ~ty:Ltype.Bool op [ lhs; rhs ]))

let build_seteq b ?name l r = build_cmp b SetEQ ?name l r
let build_setne b ?name l r = build_cmp b SetNE ?name l r
let build_setlt b ?name l r = build_cmp b SetLT ?name l r
let build_setgt b ?name l r = build_cmp b SetGT ?name l r
let build_setle b ?name l r = build_cmp b SetLE ?name l r
let build_setge b ?name l r = build_cmp b SetGE ?name l r

(* "not" and "neg" are pseudo-instructions (paper footnote 3). *)
let build_not b ?name v =
  let ty = ty_of b v in
  let all_ones =
    match ty with
    | Ltype.Bool -> Vconst (Cbool true)
    | Ltype.Integer k -> Vconst (cint k (-1L))
    | _ -> invalid_arg "build_not: not an integer type"
  in
  build_xor b ?name v all_ones

let build_neg b ?name v =
  let ty = ty_of b v in
  let zero =
    match ty with
    | Ltype.Integer k -> Vconst (cint k 0L)
    | Ltype.Float | Ltype.Double -> Vconst (Cfloat (ty, 0.0))
    | _ -> invalid_arg "build_neg: not an arithmetic type"
  in
  build_sub b ?name zero v

(* -- Memory ------------------------------------------------------------- *)

let build_alloca (b : t) ?(name = "") ?count elt_ty =
  let ops = match count with Some c -> [ c ] | None -> [] in
  instr_value
    (insert b
       (mk_instr ~name ~alloc_ty:elt_ty ~ty:(Ltype.Pointer elt_ty) Alloca ops))

let build_malloc (b : t) ?(name = "") ?count elt_ty =
  let ops = match count with Some c -> [ c ] | None -> [] in
  instr_value
    (insert b
       (mk_instr ~name ~alloc_ty:elt_ty ~ty:(Ltype.Pointer elt_ty) Malloc ops))

let build_free (b : t) ptr =
  instr_value (insert b (mk_instr ~ty:Ltype.Void Free [ ptr ]))

let build_load (b : t) ?(name = "") ptr =
  let ty =
    match Ltype.resolve b.table (ty_of b ptr) with
    | Ltype.Pointer t -> t
    | t -> invalid_arg (Fmt.str "build_load: pointer required, got %a" Ltype.pp t)
  in
  instr_value (insert b (mk_instr ~name ~ty Load [ ptr ]))

let build_store (b : t) v ptr =
  instr_value (insert b (mk_instr ~ty:Ltype.Void Store [ v; ptr ]))

(* The type navigated to by a getelementptr index list (section 2.2). *)
let gep_result_type table ptr_ty indices =
  let rec go ty = function
    | [] -> ty
    | idx :: rest -> (
      match Ltype.resolve table ty with
      | Ltype.Array (_, elt) -> go elt rest
      | Ltype.Struct _ as s -> (
        match idx with
        | Vconst (Cint (_, n)) -> go (Ltype.field_type table s (Int64.to_int n)) rest
        | Vconst (Cbool _) | _ ->
          invalid_arg "gep: struct index must be a constant integer")
      | t -> invalid_arg (Fmt.str "gep: cannot index into %a" Ltype.pp t))
  in
  match Ltype.resolve table ptr_ty with
  | Ltype.Pointer pointee -> (
    (* The first index steps over the pointer itself. *)
    match indices with
    | [] -> invalid_arg "gep: at least one index required"
    | _ :: rest -> Ltype.Pointer (go pointee rest))
  | t -> invalid_arg (Fmt.str "gep: pointer required, got %a" Ltype.pp t)

let build_gep (b : t) ?(name = "") ptr indices =
  let ty = gep_result_type b.table (ty_of b ptr) indices in
  instr_value (insert b (mk_instr ~name ~ty Gep (ptr :: indices)))

(* Convenience: gep with all-constant indices given as ints; the first
   index uses long, struct field indices use ubyte as in the paper. *)
let build_gep_const (b : t) ?name ptr (indices : int list) =
  let rec conv ty = function
    | [] -> []
    | i :: rest -> (
      match Ltype.resolve b.table ty with
      | Ltype.Array (_, elt) -> Vconst (cint Long (Int64.of_int i)) :: conv elt rest
      | Ltype.Struct _ as s ->
        Vconst (cint Ubyte (Int64.of_int i))
        :: conv (Ltype.field_type b.table s i) rest
      | t -> invalid_arg (Fmt.str "gep: cannot index into %a" Ltype.pp t))
  in
  match (Ltype.resolve b.table (ty_of b ptr), indices) with
  | Ltype.Pointer pointee, first :: rest ->
    build_gep b ?name ptr
      (Vconst (cint Long (Int64.of_int first)) :: conv pointee rest)
  | _ -> invalid_arg "build_gep_const: pointer and nonempty indices required"

(* -- Other -------------------------------------------------------------- *)

let build_cast (b : t) ?(name = "") v target_ty =
  instr_value (insert b (mk_instr ~name ~ty:target_ty Cast [ v ]))

let build_select (b : t) ?(name = "") cond iftrue iffalse =
  let ty = ty_of b iftrue in
  instr_value (insert b (mk_instr ~name ~ty Select [ cond; iftrue; iffalse ]))

let build_phi (b : t) ?(name = "") ty incoming =
  let ops = List.concat_map (fun (v, blk) -> [ v; Vblock blk ]) incoming in
  let i = mk_instr ~name ~ty Phi ops in
  (* Phis must cluster at the top of the block. *)
  prepend_instr (insertion_block b) i;
  i.iparent <- Some (insertion_block b);
  instr_value i

let return_type_of_callee (b : t) callee =
  match Ltype.resolve b.table (ty_of b callee) with
  | Ltype.Pointer fn_ty | (Ltype.Function _ as fn_ty) -> (
    match Ltype.resolve b.table fn_ty with
    | Ltype.Function (ret, _, _) -> ret
    | t -> invalid_arg (Fmt.str "call: callee is not a function: %a" Ltype.pp t))
  | t -> invalid_arg (Fmt.str "call: callee is not a function: %a" Ltype.pp t)

let build_call (b : t) ?(name = "") callee args =
  let ret = return_type_of_callee b callee in
  instr_value (insert b (mk_instr ~name ~ty:ret Call (callee :: args)))

(* -- Terminators -------------------------------------------------------- *)

let build_ret (b : t) v =
  let ops = match v with Some v -> [ v ] | None -> [] in
  instr_value (insert b (mk_instr ~ty:Ltype.Void Ret ops))

let build_br (b : t) dest =
  instr_value (insert b (mk_instr ~ty:Ltype.Void Br [ Vblock dest ]))

let build_condbr (b : t) cond iftrue iffalse =
  instr_value
    (insert b (mk_instr ~ty:Ltype.Void Br [ cond; Vblock iftrue; Vblock iffalse ]))

let build_switch (b : t) v default cases =
  let ops =
    v :: Vblock default
    :: List.concat_map (fun (c, blk) -> [ Vconst c; Vblock blk ]) cases
  in
  instr_value (insert b (mk_instr ~ty:Ltype.Void Switch ops))

let build_invoke (b : t) ?(name = "") callee args ~normal ~unwind =
  let ret = return_type_of_callee b callee in
  instr_value
    (insert b
       (mk_instr ~name ~ty:ret Invoke
          ((callee :: Vblock normal :: Vblock unwind :: args))))

let build_unwind (b : t) =
  instr_value (insert b (mk_instr ~ty:Ltype.Void Unwind []))

(* -- Function scaffolding ----------------------------------------------- *)

(* Create a function with an entry block and position the builder there. *)
let start_function (b : t) (m : modul) ?(linkage = Internal) ?(varargs = false)
    name return params =
  let f = mk_func ~linkage ~varargs ~name ~return ~params () in
  add_func m f;
  let entry = mk_block ~name:"entry" () in
  append_block f entry;
  position_at_end b entry;
  f

let append_new_block (_b : t) (f : func) name =
  let blk = mk_block ~name () in
  append_block f blk;
  blk

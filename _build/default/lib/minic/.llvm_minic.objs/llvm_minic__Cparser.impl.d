lib/minic/cparser.ml: Array Ast Char Clexer Hashtbl Int64 List Llvm_ir Printf

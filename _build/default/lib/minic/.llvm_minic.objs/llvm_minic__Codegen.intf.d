lib/minic/codegen.mli: Ast Llvm_ir

lib/minic/cparser.mli: Ast

lib/minic/ast.mli: Llvm_ir

lib/minic/clexer.ml: Buffer Int64 List Llvm_ir Printf String

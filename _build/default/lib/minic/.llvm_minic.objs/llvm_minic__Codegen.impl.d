lib/minic/codegen.ml: Ast Builder Char Cparser Fmt Hashtbl Int64 Ir List Llvm_ir Llvm_transforms Ltype Option Printf String

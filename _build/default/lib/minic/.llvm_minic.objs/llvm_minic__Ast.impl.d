lib/minic/ast.ml: Llvm_ir

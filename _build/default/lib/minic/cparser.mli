(** Recursive-descent parser for MiniC with precedence climbing.
    Struct and class names must be declared before use so that
    [(Name)expr] casts disambiguate in one pass, as in C. *)

exception Error of string * int
(** message, line *)

(** @raise Error on malformed input. *)
val parse_program : string -> Ast.program

(** Abstract syntax for MiniC, the C-like front-end language: structs,
    arrays, pointers, casts, function pointers, classes with single
    inheritance and virtual functions, try/catch/throw (paper sections
    2.4 and 4.1.2). *)

type cty =
  | Tvoid
  | Tbool
  | Tint of Llvm_ir.Ltype.int_kind
  | Tfloat
  | Tdouble
  | Tptr of cty
  | Tarr of int * cty
  | Tnamed of string
  | Tfnptr of cty * cty list

type unop = Uneg | Unot | Ubnot

type binop =
  | Badd | Bsub | Bmul | Bdiv | Brem
  | Band | Bor | Bxor | Bshl | Bshr
  | Beq | Bne | Blt | Bgt | Ble | Bge

type expr =
  | Eint of int64 * Llvm_ir.Ltype.int_kind
  | Ebool of bool
  | Efloat of float
  | Echar of char
  | Estr of string
  | Enull
  | Eid of string
  | Eunop of unop * expr
  | Ederef of expr
  | Eaddrof of expr
  | Ebinop of binop * expr * expr
  | Eand of expr * expr
  | Eor of expr * expr
  | Econd of expr * expr * expr
  | Eassign of expr * expr
  | Eopassign of binop * expr * expr
  | Eincdec of { pre : bool; inc : bool; lv : expr }
  | Ecall of expr * expr list
  | Emethod of expr * string * expr list
  | Eindex of expr * expr
  | Efield of expr * string
  | Earrow of expr * string
  | Ecast of cty * expr
  | Enew of cty
  | Enew_array of cty * expr
  | Edelete of expr
  | Esizeof of cty

type stmt =
  | Sexpr of expr
  | Sdecl of cty * string * expr option
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of stmt option * expr option * expr option * stmt
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Stry of stmt list * catch_clause
  | Sthrow of expr
  | Sswitch of expr * (int64 * stmt list) list * stmt list
      (* value, cases (no fallthrough), default *)

and catch_clause = { exc_ty : cty; exc_name : string; handler : stmt list }

type param = cty * string

type func_def = {
  fd_ret : cty;
  fd_name : string;
  fd_params : param list;
  fd_body : stmt list option;
  fd_static : bool;
}

type member =
  | Mfield of cty * string
  | Mmethod of {
      virt : bool;
      ret : cty;
      mname : string;
      params : param list;
      body : stmt list;
    }

type top =
  | Dstruct of string * (cty * string) list
  | Dclass of { cname : string; base : string option; members : member list }
  | Dfunc of func_def
  | Dglobal of { gty : cty; gname : string; init : expr option; static : bool }

type program = top list

(** Exception type-ids passed to the EH runtime, as in Figure 3. *)
val typeid_of : cty -> int64

(* MiniC -> LLVM code generation.

   The lowering follows the paper:
   - locals are allocas; SSA is built later by the stack promotion pass
     (section 3.2), so this front-end never constructs phis except for
     short-circuit operators;
   - base classes become nested structure types; every class carries a
     vtable pointer at offset 0 of its root base, and virtual tables are
     constant globals of typed function pointers (section 4.1.2);
   - try/catch/throw lower to invoke/unwind plus calls into the
     llvm_cxxeh runtime library exactly as in Figures 2 and 3: calls
     inside a try region become invokes targeting the landing pad; a
     throw inside a try branches directly to the landing pad; a throw
     elsewhere executes `unwind`. *)

open Llvm_ir
open Ast

exception Error of string

let err fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* -- Class metadata --------------------------------------------------------- *)

type method_sig = {
  ms_ret : cty;
  ms_params : param list; (* without this *)
  ms_class : string; (* introducing class (for vtable slot typing) *)
  ms_mangled : string; (* defining function at this slot *)
  ms_virtual : bool;
  ms_index : int; (* vtable slot; -1 for non-virtual *)
}

type class_info = {
  ci_name : string;
  ci_base : string option;
  ci_fields : (cty * string) list; (* own fields only *)
  mutable ci_vtable : method_sig list; (* full table, root methods first *)
  mutable ci_methods : (string * method_sig) list; (* all methods by name *)
}

type gctx = {
  m : Ir.modul;
  structs : (string, (cty * string) list) Hashtbl.t;
  classes : (string, class_info) Hashtbl.t;
  fsigs : (string, cty * cty list) Hashtbl.t; (* C signatures of functions *)
  gsigs : (string, cty) Hashtbl.t; (* C types of globals *)
  mutable string_counter : int;
}

let vtbl_type_name cname = cname ^ ".vtbl"
let mangle cname mname = cname ^ "." ^ mname

let class_of (g : gctx) name = Hashtbl.find_opt g.classes name
let is_class g name = Hashtbl.mem g.classes name

let rec root_class (g : gctx) (ci : class_info) : class_info =
  match ci.ci_base with
  | Some b -> root_class g (Hashtbl.find g.classes b)
  | None -> ci

let rec class_depth (g : gctx) (ci : class_info) : int =
  match ci.ci_base with
  | Some b -> 1 + class_depth g (Hashtbl.find g.classes b)
  | None -> 0

(* -- Type lowering ------------------------------------------------------------ *)

let rec lower_ty (g : gctx) (t : cty) : Ltype.t =
  match t with
  | Tvoid -> Ltype.Void
  | Tbool -> Ltype.Bool
  | Tint k -> Ltype.Integer k
  | Tfloat -> Ltype.Float
  | Tdouble -> Ltype.Double
  | Tptr t -> Ltype.Pointer (lower_ty g t)
  | Tarr (n, t) -> Ltype.Array (n, lower_ty g t)
  | Tnamed n -> Ltype.Named n
  | Tfnptr (ret, params) ->
    Ltype.Pointer (Ltype.Function (lower_ty g ret, List.map (lower_ty g) params, false))

(* The IR function type of a method, with `this` prepended. *)
let method_fn_type (g : gctx) (cname : string) (ms : method_sig) : Ltype.t =
  Ltype.Function
    ( lower_ty g ms.ms_ret,
      Ltype.Pointer (Ltype.Named cname)
      :: List.map (fun (t, _) -> lower_ty g t) ms.ms_params,
      false )

(* Register the layout of a class:
     root:    { vtbl_ptr, own fields... }
     derived: { base_layout, own fields... }
   plus its vtable structure type { slot types... }. *)
let register_class_types (g : gctx) (ci : class_info) =
  let own = List.map (fun (t, _) -> lower_ty g t) ci.ci_fields in
  let head =
    match ci.ci_base with
    | Some b -> Ltype.Named b
    | None ->
      (* vtable pointer, typed as a pointer to this root's vtable *)
      Ltype.Pointer (Ltype.Named (vtbl_type_name ci.ci_name))
  in
  Ir.define_type g.m ci.ci_name (Ltype.Struct (head :: own));
  let slot_ty ms =
    Ltype.Pointer (method_fn_type g ms.ms_class { ms with ms_index = ms.ms_index })
  in
  Ir.define_type g.m (vtbl_type_name ci.ci_name)
    (Ltype.Struct (List.map slot_ty ci.ci_vtable))

(* Field lookup: returns the gep index path from a pointer to [cname]'s
   layout down to the field, and the field's type. *)
let rec class_field_path (g : gctx) (cname : string) (fname : string) :
    (int list * cty) option =
  match class_of g cname with
  | None -> None
  | Some ci -> (
    let rec own k = function
      | [] -> None
      | (t, n) :: _ when n = fname -> Some ([ 1 + k ], t)
      | _ :: rest -> own (k + 1) rest
    in
    match own 0 ci.ci_fields with
    | Some r -> Some r
    | None -> (
      match ci.ci_base with
      | Some b -> (
        match class_field_path g b fname with
        | Some (path, t) -> Some (0 :: path, t)
        | None -> None)
      | None -> None))

let struct_field_path (g : gctx) (sname : string) (fname : string) :
    (int list * cty) option =
  match Hashtbl.find_opt g.structs sname with
  | None -> None
  | Some fields ->
    let rec go k = function
      | [] -> None
      | (t, n) :: _ when n = fname -> Some ([ k ], t)
      | _ :: rest -> go (k + 1) rest
    in
    go 0 fields

let field_path (g : gctx) (tyname : string) (fname : string) : int list * cty =
  match class_field_path g tyname fname with
  | Some r -> r
  | None -> (
    match struct_field_path g tyname fname with
    | Some r -> r
    | None -> err "type %s has no field %s" tyname fname)

let find_method (g : gctx) (cname : string) (mname : string) : method_sig =
  match class_of g cname with
  | None -> err "%s is not a class" cname
  | Some ci -> (
    match List.assoc_opt mname ci.ci_methods with
    | Some ms -> ms
    | None -> err "class %s has no method %s" cname mname)

(* -- Numeric promotion ---------------------------------------------------------- *)

let rank = function
  | Tbool -> 0
  | Tint (Ltype.Sbyte | Ltype.Ubyte) -> 1
  | Tint (Ltype.Short | Ltype.Ushort) -> 2
  | Tint (Ltype.Int | Ltype.Uint) -> 3
  | Tint (Ltype.Long | Ltype.Ulong) -> 4
  | Tfloat -> 5
  | Tdouble -> 6
  | _ -> -1

let is_unsigned = function
  | Tint k -> not (Ltype.is_signed k)
  | _ -> false

let promote (a : cty) (b : cty) : cty =
  if a = b then a
  else begin
    let ra = rank a and rb = rank b in
    if ra < 0 || rb < 0 then err "cannot combine non-arithmetic operands";
    if ra > rb then a
    else if rb > ra then b
    else if is_unsigned a then a
    else b
  end

(* -- Function-generation context -------------------------------------------------- *)

type fctx = {
  g : gctx;
  b : Builder.t;
  func : Ir.func;
  mutable scopes : (string, cty * Ir.value) Hashtbl.t list; (* name -> ptr *)
  mutable landing : Ir.block option; (* innermost try's landing pad *)
  mutable breaks : Ir.block list;
  mutable continues : Ir.block list;
  this_class : string option; (* set inside methods *)
  ret_ty : cty;
}

let push_scope f = f.scopes <- Hashtbl.create 8 :: f.scopes
let pop_scope f = f.scopes <- List.tl f.scopes

let bind f name ty ptr =
  match f.scopes with
  | s :: _ -> Hashtbl.replace s name (ty, ptr)
  | [] -> assert false

let lookup_var f name =
  let rec go = function
    | [] -> None
    | s :: rest -> (
      match Hashtbl.find_opt s name with Some r -> Some r | None -> go rest)
  in
  go f.scopes

(* Allocas live in the entry block so stack promotion sees them all and a
   declaration inside a loop does not grow the stack every iteration. *)
let entry_alloca (f : fctx) name (ty : Ltype.t) : Ir.value =
  let entry = Ir.entry_block f.func in
  let i =
    Ir.mk_instr ~name ~alloc_ty:ty ~ty:(Ltype.Pointer ty) Ir.Alloca []
  in
  Ir.prepend_instr entry i;
  Ir.Vinstr i

(* A call that respects the active landing pad: inside a try region it
   becomes an invoke whose unwind target is the landing pad. *)
let gen_call_value (f : fctx) (callee : Ir.value) (args : Ir.value list) :
    Ir.value =
  match f.landing with
  | None -> Builder.build_call f.b callee args
  | Some lp ->
    let cont = Builder.append_new_block f.b f.func "invoke.cont" in
    let r = Builder.build_invoke f.b callee args ~normal:cont ~unwind:lp in
    Builder.position_at_end f.b cont;
    r

let runtime_decl (g : gctx) name ret params =
  match Ir.find_func g.m name with
  | Some fn -> fn
  | None ->
    let fn =
      Ir.mk_func ~linkage:Ir.External ~name ~return:ret
        ~params:(List.map (fun t -> ("", t)) params)
        ()
    in
    Ir.add_func g.m fn;
    fn

(* -- Expressions -------------------------------------------------------------------- *)

let const_int k v = Ir.Vconst (Ir.cint k v)

(* Convert [v] of type [from_t] to [to_t]. *)
let coerce (f : fctx) (v : Ir.value) (from_t : cty) (to_t : cty) : Ir.value =
  if from_t = to_t then v
  else
    match (from_t, to_t) with
    | Tptr a, Tptr b when a = b -> v
    | Tptr sub_c, Tptr super_c -> (
      (* derived-to-base pointer conversions keep prefix layout *)
      ignore sub_c;
      ignore super_c;
      Builder.build_cast f.b v (lower_ty f.g to_t))
    | _ -> Builder.build_cast f.b v (lower_ty f.g to_t)

let to_bool (f : fctx) (v : Ir.value) (t : cty) : Ir.value =
  match t with
  | Tbool -> v
  | Tint k -> Builder.build_setne f.b v (const_int k 0L)
  | Tptr p -> Builder.build_setne f.b v (Ir.Vconst (Ir.Cnull (lower_ty f.g (Tptr p))))
  | Tfnptr _ ->
    Builder.build_setne f.b v (Ir.Vconst (Ir.Cnull (lower_ty f.g t)))
  | Tfloat | Tdouble ->
    Builder.build_setne f.b v (Ir.Vconst (Ir.Cfloat (lower_ty f.g t, 0.0)))
  | _ -> err "cannot use %s as a condition" "aggregate"

(* Array values decay to element pointers. *)
let decay (f : fctx) (v_ptr : Ir.value) (t : cty) : Ir.value * cty =
  match t with
  | Tarr (_, elt) ->
    ( Builder.build_gep f.b v_ptr [ const_int Ltype.Long 0L; const_int Ltype.Long 0L ],
      Tptr elt )
  | t -> (v_ptr, t)

let rec gen_expr (f : fctx) (e : expr) : Ir.value * cty =
  match e with
  | Eint (v, k) -> (const_int k v, Tint k)
  | Ebool b -> (Ir.Vconst (Ir.Cbool b), Tbool)
  | Efloat x -> (Ir.Vconst (Ir.Cfloat (Ltype.Double, x)), Tdouble)
  | Echar c -> (const_int Ltype.Sbyte (Int64.of_int (Char.code c)), Tint Ltype.Sbyte)
  | Enull -> (Ir.Vconst (Ir.Cnull (Ltype.Pointer Ltype.sbyte)), Tptr (Tint Ltype.Sbyte))
  | Estr s ->
    let gv = intern_string f.g s in
    ( Builder.build_gep f.b (Ir.Vglobal gv)
        [ const_int Ltype.Long 0L; const_int Ltype.Long 0L ],
      Tptr (Tint Ltype.Sbyte) )
  | Eid name
    when lookup_var f name = None
         && (match f.this_class with
            | Some cname -> class_field_path f.g cname name = None
            | None -> true)
         && Ir.find_func f.g.m name <> None -> (
    (* a function name used as a value decays to a function pointer *)
    let fn = Option.get (Ir.find_func f.g.m name) in
    match Hashtbl.find_opt f.g.fsigs name with
    | Some (ret, params) -> (Ir.Vfunc fn, Tfnptr (ret, params))
    | None -> err "function %s has no recorded signature" name)
  | Eid _ | Ederef _ | Eindex _ | Efield _ | Earrow _ -> (
    (* lvalue: load it, except arrays which decay *)
    let ptr, t = gen_lvalue f e in
    match t with
    | Tarr _ -> decay f ptr t
    | _ -> (Builder.build_load f.b ptr, t))
  | Eaddrof e ->
    let ptr, t = gen_lvalue f e in
    (ptr, Tptr t)
  | Eunop (op, e) -> (
    let v, t = gen_expr f e in
    match op with
    | Uneg -> (Builder.build_neg f.b v, t)
    | Unot ->
      let b = to_bool f v t in
      (Builder.build_not f.b b, Tbool)
    | Ubnot -> (Builder.build_not f.b v, t))
  | Ebinop (op, a, bb) -> gen_binop f op a bb
  | Eand (a, bb) -> gen_short_circuit f ~is_and:true a bb
  | Eor (a, bb) -> gen_short_circuit f ~is_and:false a bb
  | Econd (c, t, e) -> gen_ternary f c t e
  | Eassign (lv, rv) ->
    let ptr, lt = gen_lvalue f lv in
    let v, rt = gen_expr f rv in
    let v = coerce f v rt lt in
    ignore (Builder.build_store f.b v ptr);
    (v, lt)
  | Eopassign (op, lv, rv) ->
    let ptr, lt = gen_lvalue f lv in
    let cur = Builder.build_load f.b ptr in
    let v, rt = gen_expr f rv in
    let result, _ = apply_binop f op cur lt v rt in
    let result = coerce_arith f result lt in
    ignore (Builder.build_store f.b result ptr);
    (result, lt)
  | Eincdec { pre; inc; lv } ->
    let ptr, lt = gen_lvalue f lv in
    let cur = Builder.build_load f.b ptr in
    let updated =
      match lt with
      | Tptr _ ->
        let step = if inc then 1L else -1L in
        Builder.build_gep f.b cur [ const_int Ltype.Long step ]
      | Tint k ->
        let one = const_int k 1L in
        if inc then Builder.build_add f.b cur one
        else Builder.build_sub f.b cur one
      | Tfloat | Tdouble ->
        let one = Ir.Vconst (Ir.Cfloat (lower_ty f.g lt, 1.0)) in
        if inc then Builder.build_add f.b cur one
        else Builder.build_sub f.b cur one
      | _ -> err "cannot increment this type"
    in
    ignore (Builder.build_store f.b updated ptr);
    ((if pre then updated else cur), lt)
  | Ecall (Eid name, args) -> gen_named_call f name args
  | Ecall (callee, args) ->
    (* call through a function-pointer expression *)
    let fp, fpt = gen_expr f callee in
    (match fpt with
    | Tfnptr (ret, params) ->
      let actuals = gen_coerced_args f args params in
      (gen_call_value f fp actuals, ret)
    | _ -> err "called value is not a function pointer")
  | Emethod (obj, mname, args) -> gen_method_call f obj mname args
  | Ecast (ty, e) ->
    let v, t = gen_expr f e in
    (coerce f v t ty, ty)
  | Enew ty -> gen_new f ty
  | Enew_array (ty, count) ->
    let n, nt = gen_expr f count in
    let n = coerce f n nt (Tint Ltype.Uint) in
    let p = Builder.build_malloc f.b ~count:n (lower_ty f.g ty) in
    (p, Tptr ty)
  | Edelete e ->
    let v, _ = gen_expr f e in
    ignore (Builder.build_free f.b v);
    (Ir.Vconst (Ir.cint Ltype.Int 0L), Tvoid)
  | Esizeof ty ->
    ( const_int Ltype.Uint (Int64.of_int (Ltype.size_of f.g.m.Ir.mtypes (lower_ty f.g ty))),
      Tint Ltype.Uint )

(* Re-truncate an arithmetic result to the storage type of +=/++ etc. *)
and coerce_arith (f : fctx) (v : Ir.value) (lt : cty) : Ir.value =
  let want = lower_ty f.g lt in
  let have = Ir.type_of f.g.m.Ir.mtypes v in
  if Ltype.equal f.g.m.Ir.mtypes want have then v
  else Builder.build_cast f.b v want

and gen_binop (f : fctx) op a bb : Ir.value * cty =
  let va, ta = gen_expr f a in
  let vb, tb = gen_expr f bb in
  apply_binop f op va ta vb tb

and apply_binop (f : fctx) op va ta vb tb : Ir.value * cty =
  (* pointer arithmetic through getelementptr (section 2.2) *)
  match (op, ta, tb) with
  | Badd, Tptr _, Tint _ ->
    (Builder.build_gep f.b va [ coerce f vb tb (Tint Ltype.Long) ], ta)
  | Badd, Tint _, Tptr _ ->
    (Builder.build_gep f.b vb [ coerce f va ta (Tint Ltype.Long) ], tb)
  | Bsub, Tptr _, Tint _ ->
    let neg = Builder.build_neg f.b (coerce f vb tb (Tint Ltype.Long)) in
    (Builder.build_gep f.b va [ neg ], ta)
  | (Beq | Bne | Blt | Bgt | Ble | Bge), (Tptr _ | Tfnptr _), _ ->
    let vb = coerce f vb tb ta in
    (gen_cmp f op va vb, Tbool)
  | (Beq | Bne | Blt | Bgt | Ble | Bge), _, (Tptr _ | Tfnptr _) ->
    let va = coerce f va ta tb in
    (gen_cmp f op va vb, Tbool)
  | (Beq | Bne | Blt | Bgt | Ble | Bge), _, _ ->
    let t = promote ta tb in
    let va = coerce f va ta t and vb = coerce f vb tb t in
    (gen_cmp f op va vb, Tbool)
  | _ ->
    (* bools participate in arithmetic as ints (bitwise ops on two bools
       stay boolean) *)
    let arith_ty t =
      match (op, t) with
      | (Band | Bor | Bxor), Tbool when ta = Tbool && tb = Tbool -> Tbool
      | _, Tbool -> Tint Ltype.Int
      | _, t -> t
    in
    let ta' = arith_ty ta and tb' = arith_ty tb in
    let va = coerce f va ta ta' and vb = coerce f vb tb tb' in
    let ta = ta' and tb = tb' in
    let t = promote ta tb in
    let va = coerce f va ta t and vb = coerce f vb tb t in
    let build =
      match op with
      | Badd -> Builder.build_add
      | Bsub -> Builder.build_sub
      | Bmul -> Builder.build_mul
      | Bdiv -> Builder.build_div
      | Brem -> Builder.build_rem
      | Band -> Builder.build_and
      | Bor -> Builder.build_or
      | Bxor -> Builder.build_xor
      | Bshl -> Builder.build_shl
      | Bshr -> Builder.build_shr
      | Beq | Bne | Blt | Bgt | Ble | Bge -> assert false
    in
    (build f.b va vb, t)

and gen_cmp (f : fctx) op va vb : Ir.value =
  let build =
    match op with
    | Beq -> Builder.build_seteq
    | Bne -> Builder.build_setne
    | Blt -> Builder.build_setlt
    | Bgt -> Builder.build_setgt
    | Ble -> Builder.build_setle
    | Bge -> Builder.build_setge
    | _ -> assert false
  in
  build f.b va vb

and gen_short_circuit (f : fctx) ~is_and a bb : Ir.value * cty =
  let va, ta = gen_expr f a in
  let ca = to_bool f va ta in
  let from_a = Builder.insertion_block f.b in
  let rhs_bb = Builder.append_new_block f.b f.func "sc.rhs" in
  let join = Builder.append_new_block f.b f.func "sc.join" in
  if is_and then ignore (Builder.build_condbr f.b ca rhs_bb join)
  else ignore (Builder.build_condbr f.b ca join rhs_bb);
  Builder.position_at_end f.b rhs_bb;
  let vb, tb = gen_expr f bb in
  let cb = to_bool f vb tb in
  let from_b = Builder.insertion_block f.b in
  ignore (Builder.build_br f.b join);
  Builder.position_at_end f.b join;
  let phi =
    Builder.build_phi f.b Ltype.Bool
      [ (Ir.Vconst (Ir.Cbool (not is_and)), from_a); (cb, from_b) ]
  in
  (phi, Tbool)

and gen_ternary (f : fctx) c t e : Ir.value * cty =
  let vc, tc = gen_expr f c in
  let cond = to_bool f vc tc in
  let then_bb = Builder.append_new_block f.b f.func "cond.t" in
  let else_bb = Builder.append_new_block f.b f.func "cond.e" in
  let join = Builder.append_new_block f.b f.func "cond.join" in
  ignore (Builder.build_condbr f.b cond then_bb else_bb);
  Builder.position_at_end f.b then_bb;
  let vt, tt = gen_expr f t in
  let from_t = Builder.insertion_block f.b in
  ignore (Builder.build_br f.b join);
  Builder.position_at_end f.b else_bb;
  let ve, te = gen_expr f e in
  let result_t = if tt = te then tt else promote tt te in
  let ve = coerce f ve te result_t in
  let from_e = Builder.insertion_block f.b in
  ignore (Builder.build_br f.b join);
  (* coerce the then-value in its own block: go back *)
  Builder.position_at_end f.b join;
  let vt =
    if tt = result_t then vt
    else begin
      (* insert the cast at the end of from_t, before its terminator *)
      let cast =
        Ir.mk_instr ~ty:(lower_ty f.g result_t) Ir.Cast [ vt ]
      in
      Ir.insert_before_terminator from_t cast;
      Ir.Vinstr cast
    end
  in
  let phi =
    Builder.build_phi f.b (lower_ty f.g result_t) [ (vt, from_t); (ve, from_e) ]
  in
  (phi, result_t)

and gen_coerced_args (f : fctx) (args : expr list) (params : cty list) :
    Ir.value list =
  if List.length args <> List.length params then err "wrong argument count";
  List.map2
    (fun a pt ->
      let v, t = gen_expr f a in
      coerce f v t pt)
    args params

(* setjmp/longjmp (paper section 2.4: "the same mechanism also supports
   setjmp and longjmp operations in C, allowing these operations to be
   analyzed and optimized in the same way that exception features ...
   are").

   setjmp(p) lowers to a landing-pad pattern: the direct path yields 0;
   from here to the end of the function every call becomes an invoke
   whose unwind path checks (via the sjlj runtime) whether the in-flight
   longjmp targets this buffer — matching jumps re-enter at the merge
   point with the longjmp value, others keep unwinding.  longjmp(p, v)
   lowers to a runtime call followed by `unwind`, exactly like throw. *)
and gen_setjmp (f : fctx) (buf : expr) : Ir.value * cty =
  let sjlj_target =
    runtime_decl f.g "llvm_sjlj_target" Ltype.long []
  in
  let sjlj_value = runtime_decl f.g "llvm_sjlj_value" Ltype.int_ [] in
  let sjlj_clear = runtime_decl f.g "llvm_sjlj_clear" Ltype.Void [] in
  let bufv, buft = gen_expr f buf in
  let buf_as_long = coerce f bufv buft (Tint Ltype.Long) in
  let here = Builder.insertion_block f.b in
  let pad = Builder.append_new_block f.b f.func "sjlj.pad" in
  let matched = Builder.append_new_block f.b f.func "sjlj.match" in
  let rethrow = Builder.append_new_block f.b f.func "sjlj.rethrow" in
  let merge = Builder.append_new_block f.b f.func "sjlj.merge" in
  ignore (Builder.build_br f.b merge);
  (* the landing pad: does the in-flight longjmp target this buffer? *)
  Builder.position_at_end f.b pad;
  let target = Builder.build_call f.b (Ir.Vfunc sjlj_target) [] in
  let is_ours = Builder.build_seteq f.b target buf_as_long in
  ignore (Builder.build_condbr f.b is_ours matched rethrow);
  Builder.position_at_end f.b rethrow;
  (match f.landing with
  | Some outer -> ignore (Builder.build_br f.b outer)
  | None -> ignore (Builder.build_unwind f.b));
  Builder.position_at_end f.b matched;
  let v = Builder.build_call f.b (Ir.Vfunc sjlj_value) [] in
  ignore (Builder.build_call f.b (Ir.Vfunc sjlj_clear) []);
  ignore (Builder.build_br f.b merge);
  Builder.position_at_end f.b merge;
  let result =
    Builder.build_phi f.b Ltype.int_
      [ (Ir.Vconst (Ir.cint Ltype.Int 0L), here); (v, matched) ]
  in
  (* calls in the rest of the function route through the pad *)
  f.landing <- Some pad;
  (result, Tint Ltype.Int)

and gen_longjmp (f : fctx) (buf : expr) (v : expr) : Ir.value * cty =
  let sjlj_throw =
    runtime_decl f.g "llvm_sjlj_throw" Ltype.Void [ Ltype.long; Ltype.int_ ]
  in
  let bufv, buft = gen_expr f buf in
  let buf_as_long = coerce f bufv buft (Tint Ltype.Long) in
  let vv, vt = gen_expr f v in
  let vi = coerce f vv vt (Tint Ltype.Int) in
  ignore (Builder.build_call f.b (Ir.Vfunc sjlj_throw) [ buf_as_long; vi ]);
  (match f.landing with
  | Some lp -> ignore (Builder.build_br f.b lp)
  | None -> ignore (Builder.build_unwind f.b));
  (* unreachable continuation, like throw *)
  let dead = Builder.append_new_block f.b f.func "dead" in
  Builder.position_at_end f.b dead;
  (Ir.Vconst (Ir.cint Ltype.Int 0L), Tint Ltype.Int)

and gen_named_call (f : fctx) (name : string) (args : expr list) :
    Ir.value * cty =
  (match (name, args) with
  | "setjmp", [ buf ] when lookup_var f name = None -> Some (gen_setjmp f buf)
  | "longjmp", [ buf; v ] when lookup_var f name = None ->
    Some (gen_longjmp f buf v)
  | _ -> None)
  |> function
  | Some r -> r
  | None ->
  (* inside a method, a bare call may be a method of the current class *)
  let try_method () =
    match f.this_class with
    | Some cname when (match lookup_var f name with None -> true | Some _ -> false)
      -> (
      match List.assoc_opt name ((Option.get (class_of f.g cname)).ci_methods) with
      | Some _ -> Some (gen_method_call f (Eid "this") name args)
      | None -> None)
    | _ -> None
  in
  match try_method () with
  | Some r -> r
  | None -> (
    (* function-pointer variable? *)
    match lookup_var f name with
    | Some (Tfnptr (ret, params), ptr) ->
      let fp = Builder.build_load f.b ptr in
      let actuals = gen_coerced_args f args params in
      (gen_call_value f fp actuals, ret)
    | _ -> (
      match Ir.find_func f.g.m name with
      | Some fn ->
        (* coerce against the recorded C signature *)
        let csig = Hashtbl.find_opt f.g.fsigs name in
        let actuals =
          match csig with
          | Some (_, ps) -> gen_coerced_args f args ps
          | None -> List.map (fun a -> fst (gen_expr f a)) args
        in
        let ret_cty =
          match csig with Some (ret, _) -> ret | None -> Tint Ltype.Int
        in
        (gen_call_value f (Ir.Vfunc fn) actuals, ret_cty)
      | None -> err "call to undefined function %s" name))

and gen_method_call (f : fctx) (obj : expr) (mname : string) (args : expr list)
    : Ir.value * cty =
  let vobj, tobj = gen_expr f obj in
  let cname =
    match tobj with
    | Tptr (Tnamed n) when is_class f.g n -> n
    | _ -> err "method call on non-class pointer"
  in
  let ms = find_method f.g cname mname in
  let actuals = gen_coerced_args f args (List.map fst ms.ms_params) in
  let this_v = coerce f vobj tobj (Tptr (Tnamed ms.ms_class)) in
  if ms.ms_virtual then begin
    (* load the vtable pointer from offset 0 of the root base *)
    let depth = class_depth f.g (Option.get (class_of f.g cname)) in
    let path = List.init (depth + 1) (fun _ -> 0) in
    let vptr_slot =
      Builder.build_gep f.b vobj
        (const_int Ltype.Long 0L
        :: List.map (fun _ -> const_int Ltype.Ubyte 0L) path)
    in
    let vptr = Builder.build_load f.b vptr_slot in
    (* view it as this class's (longer) vtable *)
    let vtbl_ptr_ty = Ltype.Pointer (Ltype.Named (vtbl_type_name cname)) in
    let vtbl = Builder.build_cast f.b vptr vtbl_ptr_ty in
    let slot =
      Builder.build_gep f.b vtbl
        [ const_int Ltype.Long 0L; const_int Ltype.Ubyte (Int64.of_int ms.ms_index) ]
    in
    let fp = Builder.build_load f.b slot in
    (gen_call_value f fp (this_v :: actuals), ms.ms_ret)
  end
  else begin
    match Ir.find_func f.g.m ms.ms_mangled with
    | Some fn -> (gen_call_value f (Ir.Vfunc fn) (this_v :: actuals), ms.ms_ret)
    | None -> err "method %s not generated" ms.ms_mangled
  end

and gen_new (f : fctx) (ty : cty) : Ir.value * cty =
  match ty with
  | Tnamed n when is_class f.g n ->
    let p = Builder.build_malloc f.b (Ltype.Named n) in
    install_vtable f p n;
    (p, Tptr ty)
  | _ ->
    let p = Builder.build_malloc f.b (lower_ty f.g ty) in
    (p, Tptr ty)

(* store the class's vtable into the object's vptr slot *)
and install_vtable (f : fctx) (obj : Ir.value) (cname : string) : unit =
  let ci = Option.get (class_of f.g cname) in
  let depth = class_depth f.g ci in
  let root = root_class f.g ci in
  let vptr_slot =
    Builder.build_gep f.b obj
      (const_int Ltype.Long 0L
      :: List.init (depth + 1) (fun _ -> const_int Ltype.Ubyte 0L))
  in
  let vtbl_global =
    match Ir.find_gvar f.g.m (cname ^ ".vtable") with
    | Some g -> g
    | None -> err "missing vtable for %s" cname
  in
  let root_vtbl_ptr = Ltype.Pointer (Ltype.Named (vtbl_type_name root.ci_name)) in
  let v = Builder.build_cast f.b (Ir.Vglobal vtbl_global) root_vtbl_ptr in
  ignore (Builder.build_store f.b v vptr_slot)

(* -- Lvalues -------------------------------------------------------------------- *)

and gen_lvalue (f : fctx) (e : expr) : Ir.value * cty =
  match e with
  | Eid name -> (
    match lookup_var f name with
    | Some (ty, ptr) -> (ptr, ty)
    | None -> (
      (* implicit this->field inside methods *)
      match f.this_class with
      | Some cname when class_field_path f.g cname name <> None ->
        gen_lvalue f (Earrow (Eid "this", name))
      | _ -> (
        match Ir.find_gvar f.g.m name with
        | Some gv -> (
          match Hashtbl.find_opt f.g.gsigs name with
          | Some cty -> (Ir.Vglobal gv, cty)
          | None -> err "global %s has no recorded type" name)
        | None -> err "unknown variable %s" name)))
  | Ederef e ->
    let v, t = gen_expr f e in
    (match t with
    | Tptr p -> (v, p)
    | _ -> err "dereference of non-pointer")
  | Eindex (arr, idx) -> (
    let iv, it = gen_expr f idx in
    let iv = coerce f iv it (Tint Ltype.Long) in
    (* Arrays index in place; pointers index through the pointer value. *)
    match arr with
    | Eid _ | Efield _ | Earrow _ | Eindex _ | Ederef _ -> (
      let ptr, t = gen_lvalue f arr in
      match t with
      | Tarr (_, elt) ->
        (Builder.build_gep f.b ptr [ const_int Ltype.Long 0L; iv ], elt)
      | Tptr elt ->
        let base = Builder.build_load f.b ptr in
        (Builder.build_gep f.b base [ iv ], elt)
      | _ -> err "indexing a non-array")
    | _ -> (
      let v, t = gen_expr f arr in
      match t with
      | Tptr elt -> (Builder.build_gep f.b v [ iv ], elt)
      | _ -> err "indexing a non-pointer expression"))
  | Efield (base, fname) -> (
    let ptr, t = gen_lvalue f base in
    match t with
    | Tnamed tyname ->
      let path, fty = field_path f.g tyname fname in
      ( Builder.build_gep f.b ptr
          (const_int Ltype.Long 0L
          :: List.map (fun k -> const_int Ltype.Ubyte (Int64.of_int k)) path),
        fty )
    | _ -> err "field access on non-aggregate")
  | Earrow (base, fname) -> (
    let v, t = gen_expr f base in
    match t with
    | Tptr (Tnamed tyname) ->
      let path, fty = field_path f.g tyname fname in
      ( Builder.build_gep f.b v
          (const_int Ltype.Long 0L
          :: List.map (fun k -> const_int Ltype.Ubyte (Int64.of_int k)) path),
        fty )
    | _ -> err "-> on non-class/struct pointer")
  | _ -> err "expression is not an lvalue"

(* -- String literals --------------------------------------------------------------- *)

and intern_string (g : gctx) (s : string) : Ir.gvar =
  let existing =
    List.find_opt
      (fun gv ->
        match gv.Ir.ginit with
        | Some (Ir.Carray (Ltype.Integer Ltype.Sbyte, elts))
          when gv.Ir.gconstant ->
          let chars =
            List.filter_map
              (function Ir.Cint (_, v) -> Some v | _ -> None)
              elts
          in
          chars
          = List.init (String.length s) (fun k -> Int64.of_int (Char.code s.[k]))
            @ [ 0L ]
        | _ -> false)
      g.m.Ir.mglobals
  in
  match existing with
  | Some gv -> gv
  | None ->
    g.string_counter <- g.string_counter + 1;
    let elts =
      List.init (String.length s) (fun k ->
          Ir.cint Ltype.Sbyte (Int64.of_int (Char.code s.[k])))
      @ [ Ir.cint Ltype.Sbyte 0L ]
    in
    let gv =
      Ir.mk_gvar ~linkage:Ir.Internal ~constant:true
        ~name:(Printf.sprintf "str.%d" g.string_counter)
        ~ty:(Ltype.Array (String.length s + 1, Ltype.sbyte))
        ~init:(Ir.Carray (Ltype.sbyte, elts))
        ()
    in
    Ir.add_gvar g.m gv;
    gv

(* -- Statements ---------------------------------------------------------------------- *)

(* After a ret/break/continue/throw, codegen continues into a fresh
   unreachable block; CFG cleanup removes it later. *)
let start_dead_block (f : fctx) =
  let dead = Builder.append_new_block f.b f.func "dead" in
  Builder.position_at_end f.b dead

let eh_allocexc (f : fctx) =
  runtime_decl f.g "llvm_cxxeh_alloc_exc" (Ltype.Pointer Ltype.sbyte)
    [ Ltype.uint ]

let eh_throw (f : fctx) =
  runtime_decl f.g "llvm_cxxeh_throw" Ltype.Void
    [ Ltype.Pointer Ltype.sbyte; Ltype.int_ ]

let eh_typeid (f : fctx) =
  runtime_decl f.g "llvm_cxxeh_current_typeid" Ltype.int_ []

let eh_get_exc (f : fctx) =
  runtime_decl f.g "llvm_cxxeh_get_exception" (Ltype.Pointer Ltype.sbyte) []

let eh_end_catch (f : fctx) = runtime_decl f.g "llvm_cxxeh_end_catch" Ltype.Void []

let rec gen_stmt (f : fctx) (s : stmt) : unit =
  match s with
  | Sexpr e -> ignore (gen_expr f e)
  | Sdecl (ty, name, init) -> (
    let ptr = entry_alloca f name (lower_ty f.g ty) in
    bind f name ty ptr;
    (match ty with
    | Tnamed n when is_class f.g n -> install_vtable f ptr n
    | _ -> ());
    match init with
    | Some e ->
      let v, t = gen_expr f e in
      ignore (Builder.build_store f.b (coerce f v t ty) ptr)
    | None -> ())
  | Sblock stmts ->
    push_scope f;
    List.iter (gen_stmt f) stmts;
    pop_scope f
  | Sif (cond, then_s, else_s) -> (
    let vc, tc = gen_expr f cond in
    let c = to_bool f vc tc in
    let then_bb = Builder.append_new_block f.b f.func "if.then" in
    let join = Builder.append_new_block f.b f.func "if.join" in
    match else_s with
    | None ->
      ignore (Builder.build_condbr f.b c then_bb join);
      Builder.position_at_end f.b then_bb;
      gen_stmt f then_s;
      ignore (Builder.build_br f.b join);
      Builder.position_at_end f.b join
    | Some else_s ->
      let else_bb = Builder.append_new_block f.b f.func "if.else" in
      ignore (Builder.build_condbr f.b c then_bb else_bb);
      Builder.position_at_end f.b then_bb;
      gen_stmt f then_s;
      ignore (Builder.build_br f.b join);
      Builder.position_at_end f.b else_bb;
      gen_stmt f else_s;
      ignore (Builder.build_br f.b join);
      Builder.position_at_end f.b join)
  | Swhile (cond, body) ->
    let cond_bb = Builder.append_new_block f.b f.func "while.cond" in
    let body_bb = Builder.append_new_block f.b f.func "while.body" in
    let exit_bb = Builder.append_new_block f.b f.func "while.end" in
    ignore (Builder.build_br f.b cond_bb);
    Builder.position_at_end f.b cond_bb;
    let vc, tc = gen_expr f cond in
    ignore (Builder.build_condbr f.b (to_bool f vc tc) body_bb exit_bb);
    Builder.position_at_end f.b body_bb;
    f.breaks <- exit_bb :: f.breaks;
    f.continues <- cond_bb :: f.continues;
    gen_stmt f body;
    f.breaks <- List.tl f.breaks;
    f.continues <- List.tl f.continues;
    ignore (Builder.build_br f.b cond_bb);
    Builder.position_at_end f.b exit_bb
  | Sdo (body, cond) ->
    let body_bb = Builder.append_new_block f.b f.func "do.body" in
    let cond_bb = Builder.append_new_block f.b f.func "do.cond" in
    let exit_bb = Builder.append_new_block f.b f.func "do.end" in
    ignore (Builder.build_br f.b body_bb);
    Builder.position_at_end f.b body_bb;
    f.breaks <- exit_bb :: f.breaks;
    f.continues <- cond_bb :: f.continues;
    gen_stmt f body;
    f.breaks <- List.tl f.breaks;
    f.continues <- List.tl f.continues;
    ignore (Builder.build_br f.b cond_bb);
    Builder.position_at_end f.b cond_bb;
    let vc, tc = gen_expr f cond in
    ignore (Builder.build_condbr f.b (to_bool f vc tc) body_bb exit_bb);
    Builder.position_at_end f.b exit_bb
  | Sfor (init, cond, step, body) ->
    push_scope f;
    (match init with Some s -> gen_stmt f s | None -> ());
    let cond_bb = Builder.append_new_block f.b f.func "for.cond" in
    let body_bb = Builder.append_new_block f.b f.func "for.body" in
    let step_bb = Builder.append_new_block f.b f.func "for.step" in
    let exit_bb = Builder.append_new_block f.b f.func "for.end" in
    ignore (Builder.build_br f.b cond_bb);
    Builder.position_at_end f.b cond_bb;
    (match cond with
    | Some c ->
      let vc, tc = gen_expr f c in
      ignore (Builder.build_condbr f.b (to_bool f vc tc) body_bb exit_bb)
    | None -> ignore (Builder.build_br f.b body_bb));
    Builder.position_at_end f.b body_bb;
    f.breaks <- exit_bb :: f.breaks;
    f.continues <- step_bb :: f.continues;
    gen_stmt f body;
    f.breaks <- List.tl f.breaks;
    f.continues <- List.tl f.continues;
    ignore (Builder.build_br f.b step_bb);
    Builder.position_at_end f.b step_bb;
    (match step with Some e -> ignore (gen_expr f e) | None -> ());
    ignore (Builder.build_br f.b cond_bb);
    Builder.position_at_end f.b exit_bb;
    pop_scope f
  | Sreturn e -> (
    (match e with
    | Some e ->
      let v, t = gen_expr f e in
      ignore (Builder.build_ret f.b (Some (coerce f v t f.ret_ty)))
    | None -> ignore (Builder.build_ret f.b None));
    start_dead_block f)
  | Sbreak -> (
    match f.breaks with
    | target :: _ ->
      ignore (Builder.build_br f.b target);
      start_dead_block f
    | [] -> err "break outside a loop")
  | Scontinue -> (
    match f.continues with
    | target :: _ ->
      ignore (Builder.build_br f.b target);
      start_dead_block f
    | [] -> err "continue outside a loop")
  | Sthrow e ->
    let v, t = gen_expr f e in
    let size = Ltype.size_of f.g.m.Ir.mtypes (lower_ty f.g t) in
    (* the runtime allocates the exception object (Figure 3) *)
    let obj =
      Builder.build_call f.b
        (Ir.Vfunc (eh_allocexc f))
        [ const_int Ltype.Uint (Int64.of_int size) ]
    in
    let slot = Builder.build_cast f.b obj (Ltype.Pointer (lower_ty f.g t)) in
    ignore (Builder.build_store f.b v slot);
    ignore
      (Builder.build_call f.b (Ir.Vfunc (eh_throw f))
         [ obj; const_int Ltype.Int (typeid_of t) ]);
    (* inside a try: branch directly to the landing pad; otherwise unwind *)
    (match f.landing with
    | Some lp -> ignore (Builder.build_br f.b lp)
    | None -> ignore (Builder.build_unwind f.b));
    start_dead_block f
  | Sswitch (v, cases, default) ->
    (* MiniC switch has no fallthrough: each case body ends by jumping
       to the join, and `break` means the same thing *)
    let vv, vt = gen_expr f v in
    let vt = match vt with Tbool -> Tint Ltype.Int | t -> t in
    let vi = coerce f vv vt vt in
    let kind = match vt with Tint k -> k | _ -> err "switch on non-integer" in
    let join = Builder.append_new_block f.b f.func "sw.join" in
    let default_bb = Builder.append_new_block f.b f.func "sw.default" in
    let case_bbs =
      List.map
        (fun (k, body) ->
          (Ir.cint kind k, body, Builder.append_new_block f.b f.func "sw.case"))
        cases
    in
    ignore
      (Builder.build_switch f.b vi default_bb
         (List.map (fun (c, _, blk) -> (c, blk)) case_bbs));
    f.breaks <- join :: f.breaks;
    List.iter
      (fun (_, body, blk) ->
        Builder.position_at_end f.b blk;
        push_scope f;
        List.iter (gen_stmt f) body;
        pop_scope f;
        ignore (Builder.build_br f.b join))
      case_bbs;
    Builder.position_at_end f.b default_bb;
    push_scope f;
    List.iter (gen_stmt f) default;
    pop_scope f;
    ignore (Builder.build_br f.b join);
    f.breaks <- List.tl f.breaks;
    Builder.position_at_end f.b join
  | Stry (body, catch) ->
    let lp = Builder.append_new_block f.b f.func "landing" in
    let join = Builder.append_new_block f.b f.func "try.join" in
    let outer = f.landing in
    f.landing <- Some lp;
    push_scope f;
    List.iter (gen_stmt f) body;
    pop_scope f;
    f.landing <- outer;
    ignore (Builder.build_br f.b join);
    (* landing pad: dispatch on the live exception's typeid *)
    Builder.position_at_end f.b lp;
    let tid = Builder.build_call f.b (Ir.Vfunc (eh_typeid f)) [] in
    let want = const_int Ltype.Int (typeid_of catch.exc_ty) in
    let matches = Builder.build_seteq f.b tid want in
    let catch_bb = Builder.append_new_block f.b f.func "catch" in
    let rethrow_bb = Builder.append_new_block f.b f.func "rethrow" in
    ignore (Builder.build_condbr f.b matches catch_bb rethrow_bb);
    (* no match: keep unwinding (to the outer landing pad when the
       enclosing try is in this same function) *)
    Builder.position_at_end f.b rethrow_bb;
    (match outer with
    | Some olp -> ignore (Builder.build_br f.b olp)
    | None -> ignore (Builder.build_unwind f.b));
    (* match: bind the exception value and run the handler *)
    Builder.position_at_end f.b catch_bb;
    let excp = Builder.build_call f.b (Ir.Vfunc (eh_get_exc f)) [] in
    let typed =
      Builder.build_cast f.b excp (Ltype.Pointer (lower_ty f.g catch.exc_ty))
    in
    let v = Builder.build_load f.b typed in
    ignore (Builder.build_call f.b (Ir.Vfunc (eh_end_catch f)) []);
    push_scope f;
    let var = entry_alloca f catch.exc_name (lower_ty f.g catch.exc_ty) in
    bind f catch.exc_name catch.exc_ty var;
    ignore (Builder.build_store f.b v var);
    List.iter (gen_stmt f) catch.handler;
    pop_scope f;
    ignore (Builder.build_br f.b join);
    Builder.position_at_end f.b join

(* -- Top-level driver ------------------------------------------------------------------ *)

let collect_class (g : gctx) ~cname ~base ~members : class_info =
  let base_ci = Option.map (fun b -> Hashtbl.find g.classes b) base in
  let fields =
    List.filter_map (function Mfield (t, n) -> Some (t, n) | Mmethod _ -> None)
      members
  in
  let ci =
    { ci_name = cname; ci_base = base; ci_fields = fields;
      ci_vtable =
        (match base_ci with Some b -> b.ci_vtable | None -> []);
      ci_methods = (match base_ci with Some b -> b.ci_methods | None -> []) }
  in
  List.iter
    (function
      | Mfield _ -> ()
      | Mmethod { virt; ret; mname; params; body = _ } ->
        let mangled = mangle cname mname in
        let inherited = List.assoc_opt mname ci.ci_methods in
        let ms =
          match inherited with
          | Some base_entry when base_entry.ms_virtual ->
            (* override: keep the introducing slot and its signature
               typing; point the slot at our definition *)
            { base_entry with ms_mangled = mangled }
          | _ when virt ->
            { ms_ret = ret; ms_params = params; ms_class = cname;
              ms_mangled = mangled; ms_virtual = true;
              ms_index = List.length ci.ci_vtable }
          | _ ->
            { ms_ret = ret; ms_params = params; ms_class = cname;
              ms_mangled = mangled; ms_virtual = false; ms_index = -1 }
        in
        if ms.ms_virtual then
          if ms.ms_index < List.length ci.ci_vtable then
            ci.ci_vtable <-
              List.mapi (fun k e -> if k = ms.ms_index then ms else e) ci.ci_vtable
          else ci.ci_vtable <- ci.ci_vtable @ [ ms ];
        ci.ci_methods <- (mname, ms) :: List.remove_assoc mname ci.ci_methods)
    members;
  ci

(* The unmangled method name: strip the "Class." prefix. *)
let unmangled_name (ms : method_sig) : string =
  match String.index_opt ms.ms_mangled '.' with
  | Some k -> String.sub ms.ms_mangled (k + 1) (String.length ms.ms_mangled - k - 1)
  | None -> ms.ms_mangled

(* Constant-expression evaluation for global initializers. *)
let rec const_eval (g : gctx) (ty : cty) (e : expr) : Ir.const =
  match e with
  | Eint (v, _) -> (
    match lower_ty g ty with
    | Ltype.Integer k -> Ir.cint k v
    | Ltype.Bool -> Ir.Cbool (v <> 0L)
    | (Ltype.Float | Ltype.Double) as t -> Ir.Cfloat (t, Int64.to_float v)
    | _ -> err "bad integer initializer")
  | Ebool b -> Ir.Cbool b
  | Efloat x -> Ir.Cfloat (lower_ty g ty, x)
  | Echar c -> Ir.cint Ltype.Sbyte (Int64.of_int (Char.code c))
  | Enull -> Ir.Cnull (lower_ty g ty)
  | Eunop (Uneg, Eint (v, k)) -> const_eval g ty (Eint (Int64.neg v, k))
  | Eunop (Uneg, Efloat x) -> Ir.Cfloat (lower_ty g ty, -.x)
  | _ -> err "global initializers must be constants"

let compile_program ?(name = "minic") (prog : program) : Ir.modul =
  let m = Ir.mk_module name in
  let g =
    { m; structs = Hashtbl.create 16; classes = Hashtbl.create 16;
      fsigs = Hashtbl.create 64; gsigs = Hashtbl.create 32;
      string_counter = 0 }
  in
  (* 1. types *)
  List.iter
    (function
      | Dstruct (sname, fields) ->
        Hashtbl.replace g.structs sname fields;
        Ir.define_type m sname
          (Ltype.Struct (List.map (fun (t, _) -> lower_ty g t) fields))
      | Dclass { cname; base; members } ->
        let ci = collect_class g ~cname ~base ~members in
        Hashtbl.replace g.classes cname ci;
        register_class_types g ci
      | Dfunc _ | Dglobal _ -> ())
    prog;
  (* 2. function and method shells *)
  let method_bodies : (string * class_info * method_sig * param list * stmt list) list ref =
    ref []
  in
  List.iter
    (function
      | Dfunc fd ->
        if Ir.find_func m fd.fd_name = None then begin
          let linkage =
            if fd.fd_static then Ir.Internal else Ir.External
          in
          let fn =
            Ir.mk_func ~linkage ~name:fd.fd_name
              ~return:(lower_ty g fd.fd_ret)
              ~params:(List.map (fun (t, n) -> (n, lower_ty g t)) fd.fd_params)
              ()
          in
          Ir.add_func m fn
        end;
        Hashtbl.replace g.fsigs fd.fd_name
          (fd.fd_ret, List.map fst fd.fd_params)
      | Dclass { cname; members; _ } ->
        let ci = Hashtbl.find g.classes cname in
        List.iter
          (function
            | Mfield _ -> ()
            | Mmethod { ret; mname; params; body; _ } ->
              let mangled = mangle cname mname in
              let fn =
                Ir.mk_func ~linkage:Ir.Internal ~name:mangled
                  ~return:(lower_ty g ret)
                  ~params:
                    (("this", Ltype.Pointer (Ltype.Named cname))
                    :: List.map (fun (t, n) -> (n, lower_ty g t)) params)
                  ()
              in
              Ir.add_func m fn;
              let ms =
                match List.assoc_opt mname ci.ci_methods with
                | Some ms -> ms
                | None -> assert false
              in
              method_bodies := (cname, ci, ms, params, body) :: !method_bodies)
          members
      | Dstruct _ | Dglobal _ -> ())
    prog;
  (* 3. globals *)
  List.iter
    (function
      | Dglobal { gty; gname; init; static } ->
        let linkage = if static then Ir.Internal else Ir.External in
        let lty = lower_ty g gty in
        let init_c =
          match init with
          | Some e -> const_eval g gty e
          | None -> Ir.Czero lty
        in
        Ir.add_gvar m (Ir.mk_gvar ~linkage ~name:gname ~ty:lty ~init:init_c ());
        Hashtbl.replace g.gsigs gname gty
      | Dstruct _ | Dclass _ | Dfunc _ -> ())
    prog;
  (* 4. vtable globals *)
  Hashtbl.iter
    (fun _ ci ->
      let vt_ty = Ltype.Named (vtbl_type_name ci.ci_name) in
      let entries =
        List.map
          (fun ms ->
            let fn =
              match Ir.find_func m ms.ms_mangled with
              | Some fn -> fn
              | None -> err "vtable references missing method %s" ms.ms_mangled
            in
            let slot_ty = Ltype.Pointer (method_fn_type g ms.ms_class ms) in
            if
              Ltype.equal m.Ir.mtypes slot_ty
                (Ltype.Pointer (Ir.func_type fn))
            then Ir.Cfunc fn
            else Ir.Ccast (slot_ty, Ir.Cfunc fn))
          ci.ci_vtable
      in
      let resolved_ty = Ltype.resolve m.Ir.mtypes vt_ty in
      Ir.add_gvar m
        (Ir.mk_gvar ~linkage:Ir.Internal ~constant:true
           ~name:(ci.ci_name ^ ".vtable") ~ty:vt_ty
           ~init:(Ir.Cstruct (resolved_ty, entries))
           ()))
    g.classes;
  (* 5. bodies *)
  let gen_body (fn : Ir.func) ~(this_class : string option) (ret : cty)
      (params : param list) (body : stmt list) =
    let b = Builder.for_module m in
    let entry = Ir.mk_block ~name:"entry" () in
    Ir.append_block fn entry;
    Builder.position_at_end b entry;
    let f =
      { g; b; func = fn; scopes = []; landing = None; breaks = [];
        continues = []; this_class; ret_ty = ret }
    in
    push_scope f;
    (* parameters become mutable stack slots *)
    let args = fn.Ir.fargs in
    let args =
      match this_class with
      | Some cname ->
        let this_arg = List.hd args in
        bind f "this" (Tptr (Tnamed cname)) (Ir.Varg this_arg);
        (* `this` is read-only: bound directly, not via an alloca; give it
           a wrapper slot so lvalue handling stays uniform *)
        let slot = entry_alloca f "this.addr" this_arg.Ir.aty in
        ignore (Builder.build_store f.b (Ir.Varg this_arg) slot);
        bind f "this" (Tptr (Tnamed cname)) slot;
        List.tl args
      | None -> args
    in
    List.iter2
      (fun (pty, pname) arg ->
        let slot = entry_alloca f pname (lower_ty g pty) in
        ignore (Builder.build_store f.b (Ir.Varg arg) slot);
        bind f pname pty slot)
      params args;
    List.iter (gen_stmt f) body;
    (* implicit return *)
    (match ret with
    | Tvoid -> ignore (Builder.build_ret f.b None)
    | t ->
      ignore
        (Builder.build_ret f.b (Some (Ir.Vconst (Ir.Cundef (lower_ty g t))))));
    pop_scope f;
    ignore (Llvm_transforms.Cleanup.remove_unreachable_blocks fn)
  in
  List.iter
    (function
      | Dfunc { fd_body = Some body; fd_name; fd_ret; fd_params; _ } ->
        let fn = Option.get (Ir.find_func m fd_name) in
        gen_body fn ~this_class:None fd_ret fd_params body
      | Dfunc _ | Dstruct _ | Dclass _ | Dglobal _ -> ())
    prog;
  List.iter
    (fun (cname, _ci, ms, params, body) ->
      let fn = Option.get (Ir.find_func m (mangle cname (unmangled_name ms))) in
      gen_body fn ~this_class:(Some cname) ms.ms_ret params body)
    !method_bodies;
  m

(* Convenience: source text -> optimized-ready module. *)
let compile_string ?name (src : string) : Ir.modul =
  compile_program ?name (Cparser.parse_program src)

(* Recursive-descent parser for MiniC with precedence climbing for
   expressions.  Struct and class names must be declared before use so
   that `(Name)expr` casts can be distinguished from parenthesized
   expressions in one pass, as in C. *)

open Ast
open Clexer

exception Error = Clexer.Error

type state = {
  toks : Clexer.t array;
  mutable pos : int;
  type_names : (string, unit) Hashtbl.t; (* struct/class names in scope *)
}

let err st msg =
  let line = if st.pos < Array.length st.toks then st.toks.(st.pos).line else 0 in
  raise (Error (msg, line))

let peek st = st.toks.(st.pos).tok
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).tok else Eof
let peek3 st =
  if st.pos + 2 < Array.length st.toks then st.toks.(st.pos + 2).tok else Eof

let next st =
  let t = st.toks.(st.pos).tok in
  if t <> Eof then st.pos <- st.pos + 1;
  t

let expect st tok =
  let t = next st in
  if t <> tok then
    err st
      (Printf.sprintf "expected '%s', found '%s'" (Clexer.to_string tok)
         (Clexer.to_string t))

let expect_id st what =
  match next st with
  | Id s when not (is_keyword s) -> s
  | t -> err st (Printf.sprintf "expected %s, found '%s'" what (Clexer.to_string t))

(* -- Types ----------------------------------------------------------------- *)

let base_type_of_name = function
  | "void" -> Some Tvoid
  | "bool" -> Some Tbool
  | "char" -> Some (Tint Llvm_ir.Ltype.Sbyte)
  | "uchar" -> Some (Tint Llvm_ir.Ltype.Ubyte)
  | "short" -> Some (Tint Llvm_ir.Ltype.Short)
  | "ushort" -> Some (Tint Llvm_ir.Ltype.Ushort)
  | "int" -> Some (Tint Llvm_ir.Ltype.Int)
  | "uint" -> Some (Tint Llvm_ir.Ltype.Uint)
  | "long" -> Some (Tint Llvm_ir.Ltype.Long)
  | "ulong" -> Some (Tint Llvm_ir.Ltype.Ulong)
  | "float" -> Some Tfloat
  | "double" -> Some Tdouble
  | _ -> None

(* Is the upcoming token sequence the start of a type? *)
let starts_type st =
  match peek st with
  | Id "struct" | Id "class" -> true
  | Id name -> base_type_of_name name <> None || Hashtbl.mem st.type_names name
  | _ -> false

let rec parse_type st : cty =
  let base =
    match next st with
    | Id "struct" | Id "class" ->
      (* `struct Name` / `class Name` reference form *)
      Tnamed (expect_id st "a type name")
    | Id name -> (
      match base_type_of_name name with
      | Some t -> t
      | None ->
        if Hashtbl.mem st.type_names name then Tnamed name
        else err st ("unknown type " ^ name))
    | t -> err st ("expected a type, found " ^ Clexer.to_string t)
  in
  parse_type_suffix st base

and parse_type_suffix st base =
  match peek st with
  | Star ->
    ignore (next st);
    parse_type_suffix st (Tptr base)
  | Lparen when peek2 st = Star && peek3 st = Rparen ->
    (* function pointer type: T ( star ) (params) *)
    ignore (next st);
    ignore (next st);
    ignore (next st);
    expect st Lparen;
    let params = ref [] in
    if peek st <> Rparen then begin
      let rec go () =
        params := parse_type st :: !params;
        if peek st = Comma then begin
          ignore (next st);
          go ()
        end
      in
      go ()
    end;
    expect st Rparen;
    parse_type_suffix st (Tfnptr (base, List.rev !params))
  | _ -> base

(* -- Expressions ------------------------------------------------------------ *)

let binop_of_token = function
  | Plus -> Some Badd
  | Minus -> Some Bsub
  | Star -> Some Bmul
  | Slash -> Some Bdiv
  | Percent -> Some Brem
  | Amp -> Some Band
  | Pipe -> Some Bor
  | Caret -> Some Bxor
  | Shl -> Some Bshl
  | Shr -> Some Bshr
  | EqEq -> Some Beq
  | Ne -> Some Bne
  | Lt -> Some Blt
  | Gt -> Some Bgt
  | Le -> Some Ble
  | Ge -> Some Bge
  | _ -> None

(* precedence: higher binds tighter *)
let prec_of = function
  | Bmul | Bdiv | Brem -> 10
  | Badd | Bsub -> 9
  | Bshl | Bshr -> 8
  | Blt | Bgt | Ble | Bge -> 7
  | Beq | Bne -> 6
  | Band -> 5
  | Bxor -> 4
  | Bor -> 3

let opassign_of_token = function
  | PlusEq -> Some Badd
  | MinusEq -> Some Bsub
  | StarEq -> Some Bmul
  | SlashEq -> Some Bdiv
  | PercentEq -> Some Brem
  | AmpEq -> Some Band
  | PipeEq -> Some Bor
  | CaretEq -> Some Bxor
  | ShlEq -> Some Bshl
  | ShrEq -> Some Bshr
  | _ -> None

let rec parse_expr st : expr = parse_assign st

and parse_assign st : expr =
  let lhs = parse_ternary st in
  match peek st with
  | Assign ->
    ignore (next st);
    Eassign (lhs, parse_assign st)
  | t -> (
    match opassign_of_token t with
    | Some op ->
      ignore (next st);
      Eopassign (op, lhs, parse_assign st)
    | None -> lhs)

and parse_ternary st : expr =
  let cond = parse_logical_or st in
  if peek st = Question then begin
    ignore (next st);
    let t = parse_assign st in
    expect st Colon;
    let e = parse_ternary st in
    Econd (cond, t, e)
  end
  else cond

and parse_logical_or st : expr =
  let lhs = parse_logical_and st in
  if peek st = OrOr then begin
    ignore (next st);
    Eor (lhs, parse_logical_or st)
  end
  else lhs

and parse_logical_and st : expr =
  let lhs = parse_binary st 0 in
  if peek st = AndAnd then begin
    ignore (next st);
    Eand (lhs, parse_logical_and st)
  end
  else lhs

and parse_binary st (min_prec : int) : expr =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (peek st) with
    | Some op when prec_of op >= min_prec ->
      ignore (next st);
      let rhs = parse_binary st (prec_of op + 1) in
      lhs := Ebinop (op, !lhs, rhs)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st : expr =
  match peek st with
  | Minus ->
    ignore (next st);
    Eunop (Uneg, parse_unary st)
  | Bang ->
    ignore (next st);
    Eunop (Unot, parse_unary st)
  | Tilde ->
    ignore (next st);
    Eunop (Ubnot, parse_unary st)
  | Star ->
    ignore (next st);
    Ederef (parse_unary st)
  | Amp ->
    ignore (next st);
    Eaddrof (parse_unary st)
  | PlusPlus ->
    ignore (next st);
    Eincdec { pre = true; inc = true; lv = parse_unary st }
  | MinusMinus ->
    ignore (next st);
    Eincdec { pre = true; inc = false; lv = parse_unary st }
  | Id "new" ->
    ignore (next st);
    let ty = parse_type st in
    if peek st = Lbracket then begin
      ignore (next st);
      let count = parse_expr st in
      expect st Rbracket;
      Enew_array (ty, count)
    end
    else Enew ty
  | Id "delete" ->
    ignore (next st);
    Edelete (parse_unary st)
  | Id "sizeof" ->
    ignore (next st);
    expect st Lparen;
    let ty = parse_type st in
    expect st Rparen;
    Esizeof ty
  | Lparen when (match peek2 st with
                | Id name ->
                  base_type_of_name name <> None
                  || Hashtbl.mem st.type_names name
                  || name = "struct" || name = "class"
                | _ -> false) ->
    (* cast *)
    ignore (next st);
    let ty = parse_type st in
    expect st Rparen;
    Ecast (ty, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st : expr =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Lparen ->
      ignore (next st);
      let args = parse_args st in
      e := Ecall (!e, args)
    | Lbracket ->
      ignore (next st);
      let idx = parse_expr st in
      expect st Rbracket;
      e := Eindex (!e, idx)
    | Dot ->
      ignore (next st);
      let field = expect_id st "a member name" in
      if peek st = Lparen then begin
        ignore (next st);
        let args = parse_args st in
        e := Emethod (Eaddrof !e, field, args)
      end
      else e := Efield (!e, field)
    | Arrow ->
      ignore (next st);
      let field = expect_id st "a member name" in
      if peek st = Lparen then begin
        ignore (next st);
        let args = parse_args st in
        e := Emethod (!e, field, args)
      end
      else e := Earrow (!e, field)
    | PlusPlus ->
      ignore (next st);
      e := Eincdec { pre = false; inc = true; lv = !e }
    | MinusMinus ->
      ignore (next st);
      e := Eincdec { pre = false; inc = false; lv = !e }
    | _ -> continue_ := false
  done;
  !e

and parse_args st : expr list =
  if peek st = Rparen then begin
    ignore (next st);
    []
  end
  else begin
    let args = ref [ parse_expr st ] in
    while peek st = Comma do
      ignore (next st);
      args := parse_expr st :: !args
    done;
    expect st Rparen;
    List.rev !args
  end

and parse_primary st : expr =
  match next st with
  | Int_lit (v, k) -> Eint (v, k)
  | Float_lit f -> Efloat f
  | Char_lit c -> Echar c
  | Str_lit s -> Estr s
  | Id "true" -> Ebool true
  | Id "false" -> Ebool false
  | Id "null" -> Enull
  | Id name when not (is_keyword name) -> Eid name
  | Lparen ->
    let e = parse_expr st in
    expect st Rparen;
    e
  | t -> err st ("expected an expression, found " ^ Clexer.to_string t)

(* -- Statements -------------------------------------------------------------- *)

let rec parse_stmt st : stmt =
  match peek st with
  | Lbrace -> Sblock (parse_block st)
  | Id "if" ->
    ignore (next st);
    expect st Lparen;
    let cond = parse_expr st in
    expect st Rparen;
    let then_ = parse_stmt st in
    if peek st = Id "else" then begin
      ignore (next st);
      Sif (cond, then_, Some (parse_stmt st))
    end
    else Sif (cond, then_, None)
  | Id "while" ->
    ignore (next st);
    expect st Lparen;
    let cond = parse_expr st in
    expect st Rparen;
    Swhile (cond, parse_stmt st)
  | Id "do" ->
    ignore (next st);
    let body = parse_stmt st in
    (match next st with
    | Id "while" -> ()
    | t -> err st ("expected 'while', found " ^ Clexer.to_string t));
    expect st Lparen;
    let cond = parse_expr st in
    expect st Rparen;
    expect st Semi;
    Sdo (body, cond)
  | Id "for" ->
    ignore (next st);
    expect st Lparen;
    let init =
      if peek st = Semi then begin
        ignore (next st);
        None
      end
      else begin
        let s = parse_simple_stmt st in
        expect st Semi;
        Some s
      end
    in
    let cond = if peek st = Semi then None else Some (parse_expr st) in
    expect st Semi;
    let step = if peek st = Rparen then None else Some (parse_expr st) in
    expect st Rparen;
    Sfor (init, cond, step, parse_stmt st)
  | Id "return" ->
    ignore (next st);
    if peek st = Semi then begin
      ignore (next st);
      Sreturn None
    end
    else begin
      let e = parse_expr st in
      expect st Semi;
      Sreturn (Some e)
    end
  | Id "break" ->
    ignore (next st);
    expect st Semi;
    Sbreak
  | Id "continue" ->
    ignore (next st);
    expect st Semi;
    Scontinue
  | Id "switch" ->
    ignore (next st);
    expect st Lparen;
    let v = parse_expr st in
    expect st Rparen;
    expect st Lbrace;
    let cases = ref [] in
    let default = ref [] in
    while peek st <> Rbrace do
      match next st with
      | Id "case" ->
        let k =
          match next st with
          | Int_lit (n, _) -> n
          | Char_lit c -> Int64.of_int (Char.code c)
          | t -> err st ("expected a case constant, found " ^ Clexer.to_string t)
        in
        expect st Colon;
        let body = ref [] in
        let rec stmts () =
          match peek st with
          | Id "case" | Id "default" | Rbrace -> ()
          | _ ->
            body := parse_stmt st :: !body;
            stmts ()
        in
        stmts ();
        cases := (k, List.rev !body) :: !cases
      | Id "default" ->
        expect st Colon;
        let body = ref [] in
        let rec stmts () =
          match peek st with
          | Id "case" | Id "default" | Rbrace -> ()
          | _ ->
            body := parse_stmt st :: !body;
            stmts ()
        in
        stmts ();
        default := List.rev !body
      | t -> err st ("expected 'case' or 'default', found " ^ Clexer.to_string t)
    done;
    ignore (next st);
    Sswitch (v, List.rev !cases, !default)
  | Id "try" ->
    ignore (next st);
    let body = parse_block st in
    (match next st with
    | Id "catch" -> ()
    | t -> err st ("expected 'catch', found " ^ Clexer.to_string t));
    expect st Lparen;
    let exc_ty = parse_type st in
    let exc_name = expect_id st "an exception variable" in
    expect st Rparen;
    let handler = parse_block st in
    Stry (body, { exc_ty; exc_name; handler })
  | Id "throw" ->
    ignore (next st);
    let e = parse_expr st in
    expect st Semi;
    Sthrow e
  | _ ->
    let s = parse_simple_stmt st in
    expect st Semi;
    s

(* declaration or expression statement, without the trailing ';' *)
and parse_simple_stmt st : stmt =
  if starts_type st && (match peek2 st with
                       | Id name -> not (is_keyword name)
                       | Star -> true
                       | Lparen -> peek3 st = Star (* fn-pointer declarator *)
                       | _ -> false)
  then begin
    (* could still be an expression like `x * y` if x isn't a type; the
       starts_type check already filtered that *)
    let ty = parse_type st in
    let name = expect_id st "a variable name" in
    let ty =
      if peek st = Lbracket then begin
        ignore (next st);
        match next st with
        | Int_lit (n, _) ->
          expect st Rbracket;
          Tarr (Int64.to_int n, ty)
        | t -> err st ("expected array size, found " ^ Clexer.to_string t)
      end
      else ty
    in
    if peek st = Assign then begin
      ignore (next st);
      Sdecl (ty, name, Some (parse_expr st))
    end
    else Sdecl (ty, name, None)
  end
  else Sexpr (parse_expr st)

and parse_block st : stmt list =
  expect st Lbrace;
  let stmts = ref [] in
  while peek st <> Rbrace do
    if peek st = Eof then err st "unterminated block";
    stmts := parse_stmt st :: !stmts
  done;
  ignore (next st);
  List.rev !stmts

(* -- Top level ----------------------------------------------------------------- *)

let parse_params st : param list =
  expect st Lparen;
  if peek st = Rparen then begin
    ignore (next st);
    []
  end
  else begin
    let params = ref [] in
    let rec go () =
      let ty = parse_type st in
      let name = expect_id st "a parameter name" in
      params := (ty, name) :: !params;
      if peek st = Comma then begin
        ignore (next st);
        go ()
      end
    in
    go ();
    expect st Rparen;
    List.rev !params
  end

let parse_struct st : top =
  ignore (next st); (* struct *)
  let name = expect_id st "a struct name" in
  Hashtbl.replace st.type_names name ();
  expect st Lbrace;
  let fields = ref [] in
  while peek st <> Rbrace do
    let ty = parse_type st in
    let fname = expect_id st "a field name" in
    let ty =
      if peek st = Lbracket then begin
        ignore (next st);
        match next st with
        | Int_lit (n, _) ->
          expect st Rbracket;
          Tarr (Int64.to_int n, ty)
        | t -> err st ("expected array size, found " ^ Clexer.to_string t)
      end
      else ty
    in
    expect st Semi;
    fields := (ty, fname) :: !fields
  done;
  ignore (next st);
  expect st Semi;
  Dstruct (name, List.rev !fields)

let parse_class st : top =
  ignore (next st); (* class *)
  let name = expect_id st "a class name" in
  Hashtbl.replace st.type_names name ();
  let base =
    if peek st = Colon then begin
      ignore (next st);
      if peek st = Id "public" then ignore (next st);
      Some (expect_id st "a base class name")
    end
    else None
  in
  expect st Lbrace;
  let members = ref [] in
  while peek st <> Rbrace do
    (match peek st with
    | Id "public" ->
      ignore (next st);
      expect st Colon
    | _ ->
      let virt =
        if peek st = Id "virtual" then begin
          ignore (next st);
          true
        end
        else false
      in
      let ty = parse_type st in
      let mname = expect_id st "a member name" in
      if peek st = Lparen then begin
        let params = parse_params st in
        let body = parse_block st in
        members := Mmethod { virt; ret = ty; mname; params; body } :: !members
      end
      else begin
        if virt then err st "fields cannot be virtual";
        let ty =
          if peek st = Lbracket then begin
            ignore (next st);
            match next st with
            | Int_lit (n, _) ->
              expect st Rbracket;
              Tarr (Int64.to_int n, ty)
            | t -> err st ("expected array size, found " ^ Clexer.to_string t)
          end
          else ty
        in
        expect st Semi;
        members := Mfield (ty, mname) :: !members
      end)
  done;
  ignore (next st);
  expect st Semi;
  Dclass { cname = name; base; members = List.rev !members }

let parse_top st : top =
  match peek st with
  | Id "struct" when peek3 st = Lbrace -> parse_struct st
  | Id "class" when peek3 st = Lbrace || peek3 st = Colon -> parse_class st
  | _ ->
    let static =
      match peek st with
      | Id "static" ->
        ignore (next st);
        true
      | Id "extern" ->
        ignore (next st);
        false
      | _ -> false
    in
    let ty = parse_type st in
    let name = expect_id st "a name" in
    if peek st = Lparen then begin
      let params = parse_params st in
      if peek st = Semi then begin
        ignore (next st);
        Dfunc { fd_ret = ty; fd_name = name; fd_params = params;
                fd_body = None; fd_static = static }
      end
      else
        let body = parse_block st in
        Dfunc { fd_ret = ty; fd_name = name; fd_params = params;
                fd_body = Some body; fd_static = static }
    end
    else begin
      let ty =
        if peek st = Lbracket then begin
          ignore (next st);
          match next st with
          | Int_lit (n, _) ->
            expect st Rbracket;
            Tarr (Int64.to_int n, ty)
          | t -> err st ("expected array size, found " ^ Clexer.to_string t)
        end
        else ty
      in
      let init =
        if peek st = Assign then begin
          ignore (next st);
          Some (parse_expr st)
        end
        else None
      in
      expect st Semi;
      Dglobal { gty = ty; gname = name; init; static }
    end

let parse_program (src : string) : program =
  let st =
    { toks = Array.of_list (Clexer.tokenize src); pos = 0;
      type_names = Hashtbl.create 16 }
  in
  let tops = ref [] in
  while peek st <> Eof do
    tops := parse_top st :: !tops
  done;
  List.rev !tops

(* Lexer for MiniC. *)

type token =
  | Id of string
  | Int_lit of int64 * Llvm_ir.Ltype.int_kind
  | Float_lit of float
  | Char_lit of char
  | Str_lit of string
  (* punctuation *)
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Dot
  | Arrow
  | Colon
  | Question
  (* operators *)
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Bang
  | Shl
  | Shr
  | Lt
  | Gt
  | Le
  | Ge
  | EqEq
  | Ne
  | AndAnd
  | OrOr
  | Assign
  | PlusEq
  | MinusEq
  | StarEq
  | SlashEq
  | PercentEq
  | AmpEq
  | PipeEq
  | CaretEq
  | ShlEq
  | ShrEq
  | PlusPlus
  | MinusMinus
  | Eof

type t = { tok : token; line : int }

exception Error of string * int

let keywords =
  [ "void"; "bool"; "char"; "uchar"; "short"; "ushort"; "int"; "uint"; "long";
    "ulong"; "float"; "double"; "struct"; "class"; "if"; "else"; "while";
    "do"; "for"; "return"; "break"; "continue"; "true"; "false"; "null";
    "new"; "delete"; "sizeof"; "static"; "extern"; "virtual"; "try"; "catch";
    "throw"; "public"; "switch"; "case"; "default" ]

let is_keyword s = List.mem s keywords

let tokenize (src : string) : t list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let push tok = toks := { tok; line = !line } :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_digit c = c >= '0' && c <= '9' in
  let is_id_char c = is_id_start c || is_digit c in
  let read_escape () =
    (* cursor on the char after backslash *)
    let c = src.[!i] in
    incr i;
    match c with
    | 'n' -> '\n'
    | 't' -> '\t'
    | 'r' -> '\r'
    | '0' -> '\000'
    | '\\' -> '\\'
    | '\'' -> '\''
    | '"' -> '"'
    | c -> raise (Error (Printf.sprintf "bad escape \\%c" c, !line))
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && src.[!i] <> '\n' do incr i done
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then raise (Error ("unterminated comment", !line))
        else if src.[!i] = '*' && src.[!i + 1] = '/' then i := !i + 2
        else begin
          if src.[!i] = '\n' then incr line;
          incr i;
          skip ()
        end
      in
      skip ()
    end
    else if is_id_start c then begin
      let start = !i in
      while !i < n && is_id_char src.[!i] do incr i done;
      push (Id (String.sub src start (!i - start)))
    end
    else if is_digit c then begin
      let start = !i in
      let is_hex = c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') in
      if is_hex then i := !i + 2;
      let seen_dot = ref false and seen_exp = ref false in
      let continue_ = ref true in
      while !continue_ && !i < n do
        let ch = src.[!i] in
        if is_digit ch then incr i
        else if is_hex && ((ch >= 'a' && ch <= 'f') || (ch >= 'A' && ch <= 'F'))
        then incr i
        else if ch = '.' && (not is_hex) && not !seen_dot then begin
          seen_dot := true;
          incr i
        end
        else if (ch = 'e' || ch = 'E') && (not is_hex) && not !seen_exp then begin
          seen_exp := true;
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i
        end
        else continue_ := false
      done;
      let text = String.sub src start (!i - start) in
      if !seen_dot || !seen_exp then
        match float_of_string_opt text with
        | Some f -> push (Float_lit f)
        | None -> raise (Error ("bad float " ^ text, !line))
      else begin
        (* suffixes: L/l = long, U/u = uint, UL = ulong *)
        let unsigned = ref false and long_ = ref false in
        let rec suffix () =
          match peek 0 with
          | Some ('u' | 'U') -> unsigned := true; incr i; suffix ()
          | Some ('l' | 'L') -> long_ := true; incr i; suffix ()
          | _ -> ()
        in
        suffix ();
        match Int64.of_string_opt text with
        | Some v ->
          let kind =
            match (!unsigned, !long_) with
            | false, false -> Llvm_ir.Ltype.Int
            | true, false -> Llvm_ir.Ltype.Uint
            | false, true -> Llvm_ir.Ltype.Long
            | true, true -> Llvm_ir.Ltype.Ulong
          in
          push (Int_lit (v, kind))
        | None -> raise (Error ("bad integer " ^ text, !line))
      end
    end
    else if c = '\'' then begin
      incr i;
      if !i >= n then raise (Error ("unterminated char literal", !line));
      let ch =
        if src.[!i] = '\\' then begin
          incr i;
          read_escape ()
        end
        else begin
          let ch = src.[!i] in
          incr i;
          ch
        end
      in
      if !i >= n || src.[!i] <> '\'' then
        raise (Error ("unterminated char literal", !line));
      incr i;
      push (Char_lit ch)
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let rec go () =
        if !i >= n then raise (Error ("unterminated string", !line))
        else if src.[!i] = '"' then incr i
        else if src.[!i] = '\\' then begin
          incr i;
          Buffer.add_char buf (read_escape ());
          go ()
        end
        else begin
          Buffer.add_char buf src.[!i];
          incr i;
          go ()
        end
      in
      go ();
      push (Str_lit (Buffer.contents buf))
    end
    else begin
      let two a b tok_two tok_one =
        if peek 1 = Some b then begin
          i := !i + 2;
          push tok_two
        end
        else begin
          incr i;
          push tok_one
        end;
        ignore a
      in
      match c with
      | '(' -> incr i; push Lparen
      | ')' -> incr i; push Rparen
      | '{' -> incr i; push Lbrace
      | '}' -> incr i; push Rbrace
      | '[' -> incr i; push Lbracket
      | ']' -> incr i; push Rbracket
      | ';' -> incr i; push Semi
      | ',' -> incr i; push Comma
      | '.' -> incr i; push Dot
      | ':' -> incr i; push Colon
      | '?' -> incr i; push Question
      | '~' -> incr i; push Tilde
      | '+' ->
        if peek 1 = Some '+' then (i := !i + 2; push PlusPlus)
        else two '+' '=' PlusEq Plus
      | '-' ->
        if peek 1 = Some '-' then (i := !i + 2; push MinusMinus)
        else if peek 1 = Some '>' then (i := !i + 2; push Arrow)
        else two '-' '=' MinusEq Minus
      | '*' -> two '*' '=' StarEq Star
      | '/' -> two '/' '=' SlashEq Slash
      | '%' -> two '%' '=' PercentEq Percent
      | '^' -> two '^' '=' CaretEq Caret
      | '!' -> two '!' '=' Ne Bang
      | '=' -> two '=' '=' EqEq Assign
      | '&' ->
        if peek 1 = Some '&' then (i := !i + 2; push AndAnd)
        else two '&' '=' AmpEq Amp
      | '|' ->
        if peek 1 = Some '|' then (i := !i + 2; push OrOr)
        else two '|' '=' PipeEq Pipe
      | '<' ->
        if peek 1 = Some '<' then begin
          if peek 2 = Some '=' then (i := !i + 3; push ShlEq)
          else (i := !i + 2; push Shl)
        end
        else two '<' '=' Le Lt
      | '>' ->
        if peek 1 = Some '>' then begin
          if peek 2 = Some '=' then (i := !i + 3; push ShrEq)
          else (i := !i + 2; push Shr)
        end
        else two '>' '=' Ge Gt
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  push Eof;
  List.rev !toks

let to_string = function
  | Id s -> s
  | Int_lit (v, _) -> Int64.to_string v
  | Float_lit f -> string_of_float f
  | Char_lit c -> Printf.sprintf "%C" c
  | Str_lit s -> Printf.sprintf "%S" s
  | Lparen -> "(" | Rparen -> ")" | Lbrace -> "{" | Rbrace -> "}"
  | Lbracket -> "[" | Rbracket -> "]" | Semi -> ";" | Comma -> ","
  | Dot -> "." | Arrow -> "->" | Colon -> ":" | Question -> "?"
  | Plus -> "+" | Minus -> "-" | Star -> "*" | Slash -> "/" | Percent -> "%"
  | Amp -> "&" | Pipe -> "|" | Caret -> "^" | Tilde -> "~" | Bang -> "!"
  | Shl -> "<<" | Shr -> ">>" | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">="
  | EqEq -> "==" | Ne -> "!=" | AndAnd -> "&&" | OrOr -> "||" | Assign -> "="
  | PlusEq -> "+=" | MinusEq -> "-=" | StarEq -> "*=" | SlashEq -> "/="
  | PercentEq -> "%=" | AmpEq -> "&=" | PipeEq -> "|=" | CaretEq -> "^="
  | ShlEq -> "<<=" | ShrEq -> ">>=" | PlusPlus -> "++" | MinusMinus -> "--"
  | Eof -> "<eof>"

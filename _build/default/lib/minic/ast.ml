(* Abstract syntax for MiniC, the C-like front-end language.

   MiniC covers the constructs the paper uses to evaluate LLVM's mapping
   of high-level features (section 4.1.2): structs, arrays, pointers,
   casts, function pointers, plus C++-style classes with single
   inheritance and virtual functions, and try/catch/throw exceptions
   lowered to invoke/unwind. *)

type cty =
  | Tvoid
  | Tbool
  | Tint of Llvm_ir.Ltype.int_kind (* char = Sbyte, uchar = Ubyte, ... *)
  | Tfloat
  | Tdouble
  | Tptr of cty
  | Tarr of int * cty
  | Tnamed of string (* struct or class, by name *)
  | Tfnptr of cty * cty list (* return, params: function pointer *)

type unop = Uneg | Unot | Ubnot

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Brem
  | Band
  | Bor
  | Bxor
  | Bshl
  | Bshr
  | Beq
  | Bne
  | Blt
  | Bgt
  | Ble
  | Bge

type expr =
  | Eint of int64 * Llvm_ir.Ltype.int_kind
  | Ebool of bool
  | Efloat of float (* double literals *)
  | Echar of char
  | Estr of string
  | Enull
  | Eid of string
  | Eunop of unop * expr
  | Ederef of expr
  | Eaddrof of expr
  | Ebinop of binop * expr * expr
  | Eand of expr * expr (* short-circuit && *)
  | Eor of expr * expr (* short-circuit || *)
  | Econd of expr * expr * expr (* ?: *)
  | Eassign of expr * expr
  | Eopassign of binop * expr * expr (* +=, -=, ... *)
  | Eincdec of { pre : bool; inc : bool; lv : expr } (* ++x, x--, ... *)
  | Ecall of expr * expr list (* callee is a name or fn-pointer expr *)
  | Emethod of expr * string * expr list (* obj->f(args) / obj.f(args) *)
  | Eindex of expr * expr
  | Efield of expr * string (* e.f *)
  | Earrow of expr * string (* e->f *)
  | Ecast of cty * expr
  | Enew of cty
  | Enew_array of cty * expr
  | Edelete of expr
  | Esizeof of cty

type stmt =
  | Sexpr of expr
  | Sdecl of cty * string * expr option
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of stmt option * expr option * expr option * stmt
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Stry of stmt list * catch_clause
  | Sthrow of expr
  | Sswitch of expr * (int64 * stmt list) list * stmt list
      (* value, cases (no fallthrough), default *)

and catch_clause = { exc_ty : cty; exc_name : string; handler : stmt list }

type param = cty * string

type func_def = {
  fd_ret : cty;
  fd_name : string;
  fd_params : param list;
  fd_body : stmt list option; (* None = declaration *)
  fd_static : bool; (* static = internal linkage *)
}

type member =
  | Mfield of cty * string
  | Mmethod of {
      virt : bool;
      ret : cty;
      mname : string;
      params : param list;
      body : stmt list;
    }

type top =
  | Dstruct of string * (cty * string) list
  | Dclass of { cname : string; base : string option; members : member list }
  | Dfunc of func_def
  | Dglobal of { gty : cty; gname : string; init : expr option; static : bool }

type program = top list

(* Exception type-ids used by the EH runtime (paper Figure 3 passes "the
   typeid for the object" to llvm_cxxeh_throw). *)
let typeid_of (t : cty) : int64 =
  match t with
  | Tint _ | Tbool -> 1L
  | Tfloat | Tdouble -> 2L
  | Tptr _ -> 3L
  | _ -> 4L

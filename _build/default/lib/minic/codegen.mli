(** MiniC -> LLVM code generation (the "front-end" of paper section
    3.2).  The lowering follows the paper: locals are allocas (SSA is
    built later by stack promotion); base classes become nested
    structure types with a vtable pointer at offset 0 of the root
    (section 4.1.2); virtual tables are constant globals of typed
    function pointers; try/catch/throw lower to invoke/unwind plus the
    llvm_cxxeh runtime exactly as in Figures 2 and 3. *)

exception Error of string

(** Compile a parsed program.
    @raise Error on semantic errors. *)
val compile_program : ?name:string -> Ast.program -> Llvm_ir.Ir.modul

(** Parse and compile source text.
    @raise Clexer.Error on lexical/syntactic errors.
    @raise Error on semantic errors. *)
val compile_string : ?name:string -> string -> Llvm_ir.Ir.modul

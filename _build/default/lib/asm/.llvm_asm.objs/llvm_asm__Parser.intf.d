lib/asm/parser.mli: Llvm_ir

lib/asm/lexer.ml: Buffer Char Float Int64 List Printf String

lib/asm/parser.ml: Array Builder Char Float Fmt Hashtbl Int64 Ir Lexer List Llvm_ir Ltype Printf String

(** Parser for the plain-text representation (paper section 2.5).

    Two-pass so forward references resolve cleanly: pass 1 registers
    named types, global headers and function signatures; pass 2 parses
    initializers and bodies with the full symbol table in scope.
    Within a body, registers and labels may be used before definition
    (phis, loop back-edges). *)

exception Parse_error of string * int
(** message, line number *)

(** Parse a whole module from source text.
    @raise Parse_error on malformed input. *)
val parse_module : ?name:string -> string -> Llvm_ir.Ir.modul

(** Parse a module from a file. *)
val parse_file : ?name:string -> string -> Llvm_ir.Ir.modul

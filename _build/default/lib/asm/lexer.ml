(* Tokenizer for the plain-text representation.

   The token stream is whitespace-insensitive; each token carries its
   source line for error reporting.  Comments run from ';' to end of
   line. *)

type token =
  | Tpercent_ident of string (* %name *)
  | Tident of string (* bare word: keywords, opcodes, type names *)
  | Tint of int64
  | Tfloat of float
  | Tstring of string (* c"..." *)
  | Tequals
  | Tcomma
  | Tstar
  | Tlparen
  | Trparen
  | Tlbrace
  | Trbrace
  | Tlbracket
  | Trbracket
  | Tcolon
  | Tellipsis
  | Tx (* the 'x' in [4 x int] is lexed as Tident "x" *)
  | Teof

type t = { tok : token; line : int }

exception Lex_error of string * int

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '.'
  || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : t list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let push tok = toks := { tok; line = !line } :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = ';' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '%' then begin
      incr i;
      let start = !i in
      (* names may also be pure numbers (printer slots) *)
      while !i < n && (is_ident_char src.[!i] || is_digit src.[!i]) do incr i done;
      if !i = start then raise (Lex_error ("empty %-name", !line));
      push (Tpercent_ident (String.sub src start (!i - start)))
    end
    else if c = '-' && (peek 1 = Some 'i' || peek 1 = Some 'n') then begin
      (* negative special float literals: -infinity, -nan *)
      incr i;
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      match String.sub src start (!i - start) with
      | "infinity" | "inf" -> push (Tfloat Float.neg_infinity)
      | "nan" -> push (Tfloat (Float.neg Float.nan))
      | w -> raise (Lex_error ("unexpected '-" ^ w ^ "'", !line))
    end
    else if is_digit c || (c = '-' && (match peek 1 with Some d -> is_digit d | None -> false)) then begin
      let start = !i in
      if c = '-' then incr i;
      let continue = ref true in
      while !continue && !i < n do
        let ch = src.[!i] in
        let number_char =
          is_digit ch || ch = 'x' || ch = 'X'
          || (ch >= 'a' && ch <= 'f')
          || (ch >= 'A' && ch <= 'F')
          || ch = '.' || ch = 'p' || ch = 'P'
        in
        (* '+'/'-' only continue a number directly after an exponent marker *)
        let sign_after_exp =
          (ch = '+' || ch = '-')
          && (let p = src.[!i - 1] in p = 'e' || p = 'E' || p = 'p' || p = 'P')
        in
        if number_char || sign_after_exp then incr i else continue := false
      done;
      let text = String.sub src start (!i - start) in
      (* Heuristic: floats contain '.', 'p', or a decimal exponent. *)
      let is_float =
        String.contains text '.'
        || String.contains text 'p' || String.contains text 'P'
        || ((not (String.length text > 1 && (text.[0] = '0') && (text.[1] = 'x' || text.[1] = 'X')))
            && (String.contains text 'e' || String.contains text 'E'))
      in
      if is_float then
        match float_of_string_opt text with
        | Some f -> push (Tfloat f)
        | None -> raise (Lex_error ("bad float literal " ^ text, !line))
      else begin
        match Int64.of_string_opt text with
        | Some v -> push (Tint v)
        | None -> raise (Lex_error ("bad integer literal " ^ text, !line))
      end
    end
    else if c = 'c' && peek 1 = Some '"' then begin
      i := !i + 2;
      let buf = Buffer.create 16 in
      let rec go () =
        if !i >= n then raise (Lex_error ("unterminated string", !line))
        else if src.[!i] = '"' then incr i
        else if src.[!i] = '\\' && !i + 2 < n then begin
          let hex = String.sub src (!i + 1) 2 in
          Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ hex)));
          i := !i + 3;
          go ()
        end
        else begin
          Buffer.add_char buf src.[!i];
          incr i;
          go ()
        end
      in
      go ();
      push (Tstring (Buffer.contents buf))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      push (Tident (String.sub src start (!i - start)))
    end
    else begin
      (match c with
      | '=' -> push Tequals
      | ',' -> push Tcomma
      | '*' -> push Tstar
      | '(' -> push Tlparen
      | ')' -> push Trparen
      | '{' -> push Tlbrace
      | '}' -> push Trbrace
      | '[' -> push Tlbracket
      | ']' -> push Trbracket
      | ':' -> push Tcolon
      | '.' ->
        if peek 1 = Some '.' && peek 2 = Some '.' then (i := !i + 2; push Tellipsis)
        else raise (Lex_error ("unexpected '.'", !line))
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line)));
      incr i
    end
  done;
  push Teof;
  List.rev !toks

let token_to_string = function
  | Tpercent_ident s -> "%" ^ s
  | Tident s -> s
  | Tint v -> Int64.to_string v
  | Tfloat f -> string_of_float f
  | Tstring s -> Printf.sprintf "c%S" s
  | Tequals -> "="
  | Tcomma -> ","
  | Tstar -> "*"
  | Tlparen -> "("
  | Trparen -> ")"
  | Tlbrace -> "{"
  | Trbrace -> "}"
  | Tlbracket -> "["
  | Trbracket -> "]"
  | Tcolon -> ":"
  | Tellipsis -> "..."
  | Tx -> "x"
  | Teof -> "<eof>"

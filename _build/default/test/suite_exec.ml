(* Execution-engine tests: direct interpretation of sample modules,
   memory safety traps, exception semantics, and profiling. *)

open Llvm_ir
open Ir
open Llvm_exec

let check_int = Alcotest.(check int)

let ret_int (r : Interp.run_result) : int64 =
  match r.status with
  | `Returned (Interp.Rint (_, v)) -> v
  | `Returned v -> Alcotest.failf "non-integer result %a" Interp.pp_rtval v
  | `Trapped msg -> Alcotest.failf "trapped: %s" msg
  | `Unwound -> Alcotest.fail "unexpected unwind"
  | `Exited c -> Alcotest.failf "unexpected exit %d" c

let test_fact () =
  let m = Samples.fact_module () in
  let mach = Interp.create m in
  let f = Option.get (find_func m "fact") in
  let r = Interp.run_function mach f [ Interp.Rint (Ltype.Int, 5L) ] in
  Alcotest.(check int64) "5! = 120" 120L (ret_int r);
  let r = Interp.run_function mach f [ Interp.Rint (Ltype.Int, 0L) ] in
  Alcotest.(check int64) "0! = 1" 1L (ret_int r)

let test_add1 () =
  let m = Samples.add1_module () in
  let mach = Interp.create m in
  let f = Option.get (find_func m "add1") in
  let r = Interp.run_function mach f [ Interp.Rint (Ltype.Int, 41L) ] in
  Alcotest.(check int64) "41+1" 42L (ret_int r)

(* Build a main that creates a 3-node linked list and calls sum_list. *)
let sum_list_main () =
  let m = Samples.kitchen_sink_module () in
  let b = Builder.for_module m in
  let node_ptr = Ltype.pointer (Ltype.Named "node") in
  let main = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  ignore main;
  let mk_node value next =
    let n = Builder.build_malloc b (Ltype.Named "node") in
    let vslot = Builder.build_gep_const b n [ 0; 0 ] in
    ignore (Builder.build_store b (Vconst (cint Ltype.Int value)) vslot);
    let nslot = Builder.build_gep_const b n [ 0; 1 ] in
    ignore (Builder.build_store b next nslot);
    n
  in
  let n3 = mk_node 30L (Vconst (Cnull node_ptr)) in
  let n2 = mk_node 20L n3 in
  let n1 = mk_node 10L n2 in
  let f = Option.get (find_func m "sum_list") in
  let r =
    Builder.build_call b (Vfunc f) [ n1; Vconst (cint Ltype.Int 0L) ]
  in
  ignore (Builder.build_ret b (Some r));
  m

let test_linked_list () =
  let m = sum_list_main () in
  Verify.assert_valid m;
  let r = Interp.run_main m in
  Alcotest.(check int64) "sum of [10;20;30]" 60L (ret_int r)

let test_exceptions () =
  let m = Samples.exceptions_module () in
  let mach = Interp.create m in
  let caller = Option.get (find_func m "caller") in
  let r = Interp.run_function mach caller [ Interp.Rbool true ] in
  Alcotest.(check int64) "throwing path lands in cleanup" 1L (ret_int r);
  let r = Interp.run_function mach caller [ Interp.Rbool false ] in
  Alcotest.(check int64) "normal path" 0L (ret_int r)

let expect_trap m substring =
  let r = Interp.run_main m in
  match r.Interp.status with
  | `Trapped msg ->
    if
      not
        (String.length msg >= String.length substring
        && Astring_contains.contains msg substring)
    then Alcotest.failf "wrong trap: %s" msg
  | _ -> Alcotest.fail "expected a trap"

let test_null_deref () =
  let m = mk_module "nullderef" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let v =
    Builder.build_load b (Vconst (Cnull (Ltype.pointer Ltype.int_)))
  in
  ignore (Builder.build_ret b (Some v));
  expect_trap m "null"

let test_use_after_free () =
  let m = mk_module "uaf" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let p = Builder.build_malloc b Ltype.int_ in
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 1L)) p);
  ignore (Builder.build_free b p);
  let v = Builder.build_load b p in
  ignore (Builder.build_ret b (Some v));
  expect_trap m "use after free"

let test_out_of_bounds () =
  let m = mk_module "oob" in
  let b = Builder.for_module m in
  let _f = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let p = Builder.build_alloca b (Ltype.array 2 Ltype.int_) in
  let slot = Builder.build_gep_const b p [ 0; 5 ] in
  let v = Builder.build_load b slot in
  ignore (Builder.build_ret b (Some v));
  expect_trap m "out-of-bounds"

let test_div_by_zero () =
  let m = mk_module "div0" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  ignore f;
  (* hide the zero behind an alloca so constprop-free IR still traps *)
  let slot = Builder.build_alloca b Ltype.int_ in
  ignore (Builder.build_store b (Vconst (cint Ltype.Int 0L)) slot);
  let z = Builder.build_load b slot in
  let v = Builder.build_div b (Vconst (cint Ltype.Int 7L)) z in
  ignore (Builder.build_ret b (Some v));
  expect_trap m "division by zero"

let test_infinite_loop_fuel () =
  let m = mk_module "inf" in
  let b = Builder.for_module m in
  let f = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let loop = Builder.append_new_block b f "loop" in
  ignore (Builder.build_br b loop);
  Builder.position_at_end b loop;
  ignore (Builder.build_br b loop);
  let r = Interp.run_main ~fuel:10_000 m in
  (match r.Interp.status with
  | `Trapped msg -> Alcotest.(check bool) "fuel trap" true
      (Astring_contains.contains msg "fuel")
  | _ -> Alcotest.fail "expected fuel exhaustion")

let test_indirect_call () =
  let m = mk_module "indirect" in
  let b = Builder.for_module m in
  let callee =
    Builder.start_function b m ~linkage:Internal "target" Ltype.int_
      [ ("x", Ltype.int_) ]
  in
  let x = Varg (List.hd callee.fargs) in
  ignore (Builder.build_ret b (Some (Builder.build_add b x x)));
  let _main = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let fn_ptr_ty = Ltype.pointer (Ltype.func Ltype.int_ [ Ltype.int_ ]) in
  let slot = Builder.build_alloca b fn_ptr_ty in
  ignore (Builder.build_store b (Vfunc callee) slot);
  let fp = Builder.build_load b slot in
  let r = Builder.build_call b fp [ Vconst (cint Ltype.Int 21L) ] in
  ignore (Builder.build_ret b (Some r));
  Verify.assert_valid m;
  let r = Interp.run_main m in
  Alcotest.(check int64) "indirect call through memory" 42L (ret_int r)

let test_profile_counts () =
  let m = Samples.fact_module () in
  let b = Builder.for_module m in
  let _main = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let f = Option.get (find_func m "fact") in
  let r = Builder.build_call b (Vfunc f) [ Vconst (cint Ltype.Int 10L) ] in
  ignore (Builder.build_ret b (Some r));
  let result, profile = Interp.run_main_with_profile m in
  ignore (ret_int result);
  let body = List.nth f.fblocks 2 in
  check_int "loop body runs 10 times" 10 (Interp.block_count profile body);
  check_int "fact entered once" 1 (Interp.func_count profile f)

let test_global_state () =
  (* A global counter incremented in a loop; checks global init + load/store. *)
  let m = mk_module "gstate" in
  let b = Builder.for_module m in
  let g =
    mk_gvar ~linkage:Internal ~name:"acc" ~ty:Ltype.int_
      ~init:(cint Ltype.Int 5L) ()
  in
  add_gvar m g;
  let f = Builder.start_function b m ~linkage:External "main" Ltype.int_ [] in
  let loop = Builder.append_new_block b f "loop" in
  let done_ = Builder.append_new_block b f "done" in
  let entry = Builder.insertion_block b in
  ignore (Builder.build_br b loop);
  Builder.position_at_end b loop;
  let i =
    Builder.build_phi b ~name:"i" Ltype.int_ [ (Vconst (cint Ltype.Int 0L), entry) ]
  in
  let cur = Builder.build_load b (Vglobal g) in
  ignore (Builder.build_store b (Builder.build_add b cur i) (Vglobal g));
  let i' = Builder.build_add b i (Vconst (cint Ltype.Int 1L)) in
  (match i with
  | Vinstr phi -> phi_add_incoming phi i' loop
  | _ -> assert false);
  let c = Builder.build_setlt b i' (Vconst (cint Ltype.Int 5L)) in
  ignore (Builder.build_condbr b c loop done_);
  Builder.position_at_end b done_;
  let final = Builder.build_load b (Vglobal g) in
  ignore (Builder.build_ret b (Some final));
  Verify.assert_valid m;
  (* 5 + (0+1+2+3+4) = 15 *)
  Alcotest.(check int64) "global accumulation" 15L (ret_int (Interp.run_main m))

let tests =
  [ Alcotest.test_case "factorial" `Quick test_fact;
    Alcotest.test_case "add1" `Quick test_add1;
    Alcotest.test_case "heap linked list via gep" `Quick test_linked_list;
    Alcotest.test_case "invoke/unwind semantics" `Quick test_exceptions;
    Alcotest.test_case "null dereference traps" `Quick test_null_deref;
    Alcotest.test_case "use after free traps" `Quick test_use_after_free;
    Alcotest.test_case "out of bounds traps" `Quick test_out_of_bounds;
    Alcotest.test_case "division by zero traps" `Quick test_div_by_zero;
    Alcotest.test_case "infinite loops exhaust fuel" `Quick test_infinite_loop_fuel;
    Alcotest.test_case "indirect calls" `Quick test_indirect_call;
    Alcotest.test_case "block profiling" `Quick test_profile_counts;
    Alcotest.test_case "global variable state" `Quick test_global_state ]

test/suite_minic.ml: Alcotest Codegen Fmt Int64 Interp Ir Llvm_exec Llvm_ir Llvm_minic Llvm_transforms Option Printer Verify

test/suite_linker.ml: Alcotest Codegen Fmt Ir Lifelong Link List Llvm_asm Llvm_exec Llvm_ir Llvm_linker Llvm_minic Llvm_transforms Printf String Verify

test/suite_workloads.ml: Alcotest Astring_contains Compress Float Fmt Genprog Ir List Llvm_bitcode Llvm_exec Llvm_ir Llvm_transforms Llvm_workloads Option Printf QCheck Spec String Verify

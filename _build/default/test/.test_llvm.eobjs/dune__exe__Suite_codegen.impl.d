test/suite_codegen.ml: Alcotest Astring_contains Builder Emit Int64 Ir Isel List Llvm_codegen Llvm_ir Llvm_minic Llvm_transforms Ltype Mir Printf Regalloc Samples Target

test/suite_bitcode.ml: Alcotest Decoder Encoder Fmt Ir List Llvm_bitcode Llvm_exec Llvm_ir Llvm_minic Llvm_transforms Printer Printf Samples String Verify

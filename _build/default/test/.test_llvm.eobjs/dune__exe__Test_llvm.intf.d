test/test_llvm.mli:

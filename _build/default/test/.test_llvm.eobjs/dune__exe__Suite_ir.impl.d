test/suite_ir.ml: Alcotest Builder Fmt Fold Gen Hashtbl Int64 Ir List Llvm_exec Llvm_ir Ltype Option QCheck Random Samples Verify

test/suite_exec.ml: Alcotest Astring_contains Builder Interp Ir List Llvm_exec Llvm_ir Ltype Option Samples String Verify

test/suite_asm.ml: Alcotest Builder Fmt Int64 Ir List Llvm_asm Llvm_ir Ltype Option Printer Printf Random Samples Verify

test/samples.ml: Builder Ir List Llvm_ir Ltype

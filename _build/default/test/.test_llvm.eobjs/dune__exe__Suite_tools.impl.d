test/suite_tools.ml: Alcotest Filename Fmt List String Sys Unix

test/suite_analysis.ml: Alcotest Builder Callgraph Codegen Dominance Dsa Ir List Llvm_analysis Llvm_ir Llvm_minic Llvm_transforms Loops Ltype Modref Option Printf Samples Ssa_check

test/irgen.ml: Builder Int64 Ir List Llvm_ir Llvm_workloads Ltype Printf Rng

test/suite_random.ml: Fmt Ir Irgen List Llvm_analysis Llvm_asm Llvm_bitcode Llvm_codegen Llvm_exec Llvm_ir Llvm_transforms Pass Pipelines Printer Printf QCheck QCheck_alcotest String Verify

(* A structured random IR program generator for differential testing.

   Programs are built directly with the Builder API (rather than via the
   front-end) so that they reach corners the front-end never emits:
   mixed signed/unsigned kinds, select chains, switches, odd cast
   sequences, phis with many incoming edges.  Programs are safe by
   construction — constant loop bounds, nonzero divisors, masked shift
   amounts, in-bounds constant indices — so any trap after optimization
   is itself a bug.

   Everything is deterministic in the seed. *)

open Llvm_ir
open Ir
open Llvm_workloads

type genv = {
  rng : Rng.t;
  m : modul;
  b : Builder.t;
  mutable pool : (value * Ltype.t) list; (* available SSA values *)
  mutable funcs : func list; (* previously generated functions *)
  f : func;
}

let int_kinds =
  [ Ltype.Sbyte; Ltype.Ubyte; Ltype.Short; Ltype.Ushort; Ltype.Int;
    Ltype.Uint; Ltype.Long; Ltype.Ulong ]

let random_kind g = Rng.pick g.rng int_kinds

let random_const g kind =
  Vconst (cint kind (Int64.of_int (Rng.int g.rng 2000 - 1000)))

(* a pool value of the wanted type, casting one if necessary *)
let value_of_type (g : genv) (ty : Ltype.t) : value =
  let candidates = List.filter (fun (_, t) -> t = ty) g.pool in
  match candidates with
  | _ :: _ when not (Rng.chance g.rng 20) ->
    fst (Rng.pick g.rng candidates)
  | _ -> (
    match ty with
    | Ltype.Integer k -> (
      (* cast some existing value, or a fresh constant *)
      match g.pool with
      | _ :: _ when Rng.bool_ g.rng ->
        let v, _ = Rng.pick g.rng g.pool in
        Builder.build_cast g.b v ty
      | _ -> random_const g k)
    | Ltype.Bool -> Vconst (Cbool (Rng.bool_ g.rng))
    | _ -> Vconst (Cundef ty))

let push g v ty = g.pool <- (v, ty) :: g.pool

let random_int_value (g : genv) : value * Ltype.t =
  let ints = List.filter (fun (_, t) -> Ltype.is_integer t) g.pool in
  match ints with
  | [] ->
    let k = random_kind g in
    let v = random_const g k in
    (v, Ltype.Integer k)
  | l -> Rng.pick g.rng l

(* -- step kinds ------------------------------------------------------------- *)

let gen_binop (g : genv) =
  let v, ty = random_int_value g in
  let kind = match ty with Ltype.Integer k -> k | _ -> Ltype.Int in
  let rhs =
    match Rng.int g.rng 3 with
    | 0 -> value_of_type g ty
    | 1 -> random_const g kind
    | _ ->
      (* masked shift amount *)
      Vconst (cint kind (Int64.of_int (Rng.int g.rng (Ltype.int_bits kind))))
  in
  let result =
    match Rng.int g.rng 8 with
    | 0 -> Builder.build_add g.b v rhs
    | 1 -> Builder.build_sub g.b v rhs
    | 2 -> Builder.build_mul g.b v rhs
    | 3 -> Builder.build_and g.b v rhs
    | 4 -> Builder.build_or g.b v rhs
    | 5 -> Builder.build_xor g.b v rhs
    | 6 ->
      (* nonzero divisor *)
      let d = 1 + Rng.int g.rng 30 in
      let div = Vconst (cint kind (Int64.of_int d)) in
      if Rng.bool_ g.rng then Builder.build_div g.b v div
      else Builder.build_rem g.b v div
    | _ ->
      let amount =
        Vconst (cint kind (Int64.of_int (Rng.int g.rng (Ltype.int_bits kind))))
      in
      if Rng.bool_ g.rng then Builder.build_shl g.b v amount
      else Builder.build_shr g.b v amount
  in
  push g result ty

let gen_cmp_select (g : genv) =
  let v1, ty = random_int_value g in
  let v2 = value_of_type g ty in
  let cmp =
    match Rng.int g.rng 6 with
    | 0 -> Builder.build_seteq g.b v1 v2
    | 1 -> Builder.build_setne g.b v1 v2
    | 2 -> Builder.build_setlt g.b v1 v2
    | 3 -> Builder.build_setgt g.b v1 v2
    | 4 -> Builder.build_setle g.b v1 v2
    | _ -> Builder.build_setge g.b v1 v2
  in
  let s = Builder.build_select g.b cmp v1 v2 in
  push g s ty

let gen_cast (g : genv) =
  let v, _ = random_int_value g in
  let target = Ltype.Integer (random_kind g) in
  push g (Builder.build_cast g.b v target) target

let gen_memory (g : genv) =
  (* an alloca written then read (possibly an array cell) *)
  if Rng.bool_ g.rng then begin
    let kind = random_kind g in
    let ty = Ltype.Integer kind in
    let slot = Builder.build_alloca g.b ty in
    ignore (Builder.build_store g.b (value_of_type g ty) slot);
    (* sometimes overwrite before reading *)
    if Rng.chance g.rng 40 then
      ignore (Builder.build_store g.b (value_of_type g ty) slot);
    push g (Builder.build_load g.b slot) ty
  end
  else begin
    let n = 2 + Rng.int g.rng 6 in
    let arr = Builder.build_alloca g.b (Ltype.array n Ltype.long) in
    let idx = Rng.int g.rng n in
    let cell = Builder.build_gep_const g.b arr [ 0; idx ] in
    ignore (Builder.build_store g.b (value_of_type g Ltype.long) cell);
    let cell2 = Builder.build_gep_const g.b arr [ 0; Rng.int g.rng n ] in
    push g (Builder.build_load g.b cell2) Ltype.long
  end

(* a diamond: if/else computing different updates, merged with a phi *)
let gen_diamond (g : genv) =
  let v1, ty = random_int_value g in
  let v2 = value_of_type g ty in
  let cond = Builder.build_setlt g.b v1 v2 in
  let then_bb = Builder.append_new_block g.b g.f "t" in
  let else_bb = Builder.append_new_block g.b g.f "e" in
  let join = Builder.append_new_block g.b g.f "j" in
  ignore (Builder.build_condbr g.b cond then_bb else_bb);
  Builder.position_at_end g.b then_bb;
  let tv = Builder.build_add g.b v1 (value_of_type g ty) in
  ignore (Builder.build_br g.b join);
  Builder.position_at_end g.b else_bb;
  let ev = Builder.build_xor g.b v2 (value_of_type g ty) in
  ignore (Builder.build_br g.b join);
  Builder.position_at_end g.b join;
  let phi = Builder.build_phi g.b ty [ (tv, then_bb); (ev, else_bb) ] in
  push g phi ty

(* a counted loop accumulating into a phi *)
let gen_loop (g : genv) =
  let v, ty = random_int_value g in
  let kind = match ty with Ltype.Integer k -> k | _ -> Ltype.Int in
  let trip = 1 + Rng.int g.rng 8 in
  let pre = Builder.insertion_block g.b in
  let loop = Builder.append_new_block g.b g.f "loop" in
  let exit_ = Builder.append_new_block g.b g.f "done" in
  ignore (Builder.build_br g.b loop);
  Builder.position_at_end g.b loop;
  let i = Builder.build_phi g.b Ltype.int_ [ (Vconst (cint Ltype.Int 0L), pre) ] in
  let acc = Builder.build_phi g.b ty [ (v, pre) ] in
  let acc' =
    match Rng.int g.rng 3 with
    | 0 -> Builder.build_add g.b acc (value_of_type g ty)
    | 1 -> Builder.build_xor g.b acc (random_const g kind)
    | _ -> Builder.build_sub g.b acc (Vconst (cint kind 3L))
  in
  let i' = Builder.build_add g.b i (Vconst (cint Ltype.Int 1L)) in
  (match (i, acc) with
  | Vinstr pi, Vinstr pa ->
    phi_add_incoming pi i' loop;
    phi_add_incoming pa acc' loop
  | _ -> assert false);
  let c = Builder.build_setlt g.b i' (Vconst (cint Ltype.Int (Int64.of_int trip))) in
  ignore (Builder.build_condbr g.b c loop exit_);
  Builder.position_at_end g.b exit_;
  push g acc' ty

let gen_switch (g : genv) =
  let v, ty = random_int_value g in
  let kind = match ty with Ltype.Integer k -> k | _ -> Ltype.Int in
  let ncases = 1 + Rng.int g.rng 3 in
  let join = Builder.append_new_block g.b g.f "sw.join" in
  let default = Builder.append_new_block g.b g.f "sw.d" in
  let case_blocks =
    List.init ncases (fun k -> (cint kind (Int64.of_int k), Builder.append_new_block g.b g.f "sw.c"))
  in
  ignore (Builder.build_switch g.b v default case_blocks);
  let incoming =
    List.mapi
      (fun k (_, blk) ->
        Builder.position_at_end g.b blk;
        ignore (Builder.build_br g.b join);
        (Vconst (cint kind (Int64.of_int (k * 7 + 1))), blk))
      case_blocks
  in
  Builder.position_at_end g.b default;
  ignore (Builder.build_br g.b join);
  Builder.position_at_end g.b join;
  let phi =
    Builder.build_phi g.b ty ((Vconst (cint kind 0L), default) :: incoming)
  in
  push g phi ty

(* call a previously generated function *)
let gen_call (g : genv) =
  match g.funcs with
  | [] -> gen_binop g
  | fs ->
    let callee = Rng.pick g.rng fs in
    let args =
      List.map (fun a -> value_of_type g a.aty) callee.fargs
    in
    let r = Builder.build_call g.b (Vfunc callee) args in
    push g r callee.freturn

(* -- functions and modules ---------------------------------------------------- *)

let gen_function (rng : Rng.t) (m : modul) (prior : func list) (name : string) :
    func =
  let nparams = 1 + Rng.int rng 3 in
  let params =
    List.init nparams (fun k ->
        (Printf.sprintf "p%d" k, Ltype.Integer (Rng.pick rng int_kinds)))
  in
  let b = Builder.for_module m in
  let f = Builder.start_function b m ~linkage:Internal name Ltype.long params in
  let g =
    { rng; m; b;
      pool = List.map (fun a -> (Varg a, a.aty)) f.fargs;
      funcs = prior; f }
  in
  let steps = 4 + Rng.int rng 12 in
  for _ = 1 to steps do
    match Rng.int g.rng 10 with
    | 0 | 1 | 2 -> gen_binop g
    | 3 -> gen_cmp_select g
    | 4 -> gen_cast g
    | 5 -> gen_memory g
    | 6 -> gen_diamond g
    | 7 -> gen_loop g
    | 8 -> gen_switch g
    | _ -> gen_call g
  done;
  (* return a long mixing a few pool values *)
  let mix =
    List.fold_left
      (fun acc (v, ty) ->
        let as_long =
          if ty = Ltype.long then v else Builder.build_cast g.b v Ltype.long
        in
        Builder.build_xor g.b acc as_long)
      (Vconst (cint Ltype.Long 0L))
      (List.filteri (fun k _ -> k < 5) g.pool)
  in
  ignore (Builder.build_ret g.b (Some mix));
  f

let gen_module (seed : int) : modul =
  let rng = Rng.create seed in
  let m = mk_module (Printf.sprintf "rand%d" seed) in
  let nfuncs = 1 + Rng.int rng 4 in
  let funcs = ref [] in
  for k = 0 to nfuncs - 1 do
    funcs := gen_function rng m !funcs (Printf.sprintf "f%d" k) :: !funcs
  done;
  (* main calls every function with constant arguments and mixes results *)
  let b = Builder.for_module m in
  let _main = Builder.start_function b m ~linkage:External "main" Ltype.long [] in
  let result =
    List.fold_left
      (fun acc f ->
        let args =
          List.map
            (fun a ->
              match a.aty with
              | Ltype.Integer k ->
                Vconst (cint k (Int64.of_int (Rng.int rng 500 - 250)))
              | ty -> Vconst (Cundef ty))
            f.fargs
        in
        let r = Builder.build_call b (Vfunc f) args in
        Builder.build_xor b acc r)
      (Vconst (cint Ltype.Long 0L))
      !funcs
  in
  ignore (Builder.build_ret b (Some result));
  m

(* Linker and lifelong-pipeline tests (paper sections 3.1, 3.3, 3.5, 3.6). *)

open Llvm_ir
open Llvm_minic
open Llvm_linker

let compile = Codegen.compile_string

let test_link_resolves_declarations () =
  let unit1 =
    compile ~name:"unit1"
      {| extern int helper(int x);
         int main() { return helper(20) + 2; } |}
  in
  let unit2 = compile ~name:"unit2" {| int helper(int x) { return x * 2; } |} in
  let m = Link.link [ unit1; unit2 ] in
  Verify.assert_valid m;
  (* exactly one `helper`, defined *)
  let helpers = List.filter (fun f -> f.Ir.fname = "helper") m.Ir.mfuncs in
  Alcotest.(check int) "one helper" 1 (List.length helpers);
  Alcotest.(check bool) "defined" false (Ir.is_declaration (List.hd helpers));
  match (Llvm_exec.Interp.run_main m).Llvm_exec.Interp.status with
  | `Returned (Llvm_exec.Interp.Rint (_, v)) ->
    Alcotest.(check int64) "whole program runs" 42L v
  | _ -> Alcotest.fail "run failed"

let test_link_definition_then_declaration () =
  (* same as above but the defining unit comes first *)
  let unit1 = compile ~name:"unit1" {| int helper(int x) { return x * 2; } |} in
  let unit2 =
    compile ~name:"unit2"
      {| extern int helper(int x);
         int main() { return helper(21); } |}
  in
  let m = Link.link [ unit1; unit2 ] in
  Verify.assert_valid m;
  match (Llvm_exec.Interp.run_main m).Llvm_exec.Interp.status with
  | `Returned (Llvm_exec.Interp.Rint (_, v)) ->
    Alcotest.(check int64) "resolves" 42L v
  | _ -> Alcotest.fail "run failed"

let test_link_renames_internal_collisions () =
  let unit1 =
    compile ~name:"unit1"
      {| static int secret() { return 1; }
         int one() { return secret(); } |}
  in
  let unit2 =
    compile ~name:"unit2"
      {| extern int one();
         static int secret() { return 2; }
         int two() { return secret(); }
         int main() { return two() * 10 + one(); } |}
  in
  let m = Link.link [ unit1; unit2 ] in
  Verify.assert_valid m;
  match (Llvm_exec.Interp.run_main m).Llvm_exec.Interp.status with
  | `Returned (Llvm_exec.Interp.Rint (_, v)) ->
    Alcotest.(check int64) "each unit keeps its own static" 21L v
  | _ -> Alcotest.fail "run failed"

let test_link_duplicate_definition_fails () =
  let unit1 = compile ~name:"unit1" {| int f() { return 1; } |} in
  let unit2 = compile ~name:"unit2" {| int f() { return 2; } |} in
  match Link.link [ unit1; unit2 ] with
  | exception Link.Link_error _ -> ()
  | _ -> Alcotest.fail "expected a duplicate-symbol error"

let test_link_globals_across_units () =
  let unit1 =
    compile ~name:"unit1"
      {| int shared = 5;
         void bump() { shared += 3; } |}
  in
  let unit2 =
    compile ~name:"unit2"
      {| extern int shared;
         extern void bump();
         int main() { bump(); bump(); return shared; } |}
  in
  (* extern globals in MiniC compile to defined-with-zero; drop unit2's *)
  ignore unit2;
  let unit2b =
    Llvm_asm.Parser.parse_module ~name:"unit2"
      {|
%shared = external global int
declare void %bump()
int %main() {
entry:
  call void %bump()
  call void %bump()
  %v = load int* %shared
  ret int %v
}
|}
  in
  let m = Link.link [ unit1; unit2b ] in
  Verify.assert_valid m;
  match (Llvm_exec.Interp.run_main m).Llvm_exec.Interp.status with
  | `Returned (Llvm_exec.Interp.Rint (_, v)) ->
    Alcotest.(check int64) "shared global" 11L v
  | _ -> Alcotest.fail "run failed"

let test_internalize_enables_dge () =
  let unit1 =
    compile ~name:"unit1"
      {| int used() { return 7; }
         int exported_but_dead() { return 9; } |}
  in
  let unit2 =
    compile ~name:"unit2"
      {| extern int used();
         int main() { return used(); } |}
  in
  let m = Link.link [ unit1; unit2 ] in
  Link.internalize m;
  let stats = Llvm_transforms.Dge.run m in
  Alcotest.(check bool) "dead export deleted after internalize" true
    (stats.Llvm_transforms.Dge.deleted_functions >= 1);
  Alcotest.(check bool) "main survives" true (Ir.find_func m "main" <> None);
  Alcotest.(check bool) "used survives" true (Ir.find_func m "used" <> None)

(* -- lifelong pipeline ------------------------------------------------------------ *)

let hot_program =
  {| static int hot_helper(int x) {
       int acc = 0;
       for (int i = 0; i < 4; i++) acc += x * i;
       return acc;
     }
     int main() {
       int total = 0;
       for (int round = 0; round < 500; round++) total ^= hot_helper(round & 15);
       return total & 63;
     } |}

let test_lifelong_pipeline () =
  let unit1 = compile ~name:"app" hot_program in
  let exe = Lifelong.build ~ipo:false [ unit1 ] in
  Alcotest.(check bool) "bitcode shipped in the executable" true
    (String.length exe.Lifelong.bitcode > 0);
  Alcotest.(check bool) "native code generated" true
    (exe.Lifelong.native_x86_bytes > 0 && exe.Lifelong.native_sparc_bytes > 0);
  (* first end-user run gathers a profile *)
  let report = Lifelong.run_in_the_field exe in
  let baseline_instrs = report.Lifelong.result.Llvm_exec.Interp.instructions in
  let hot = Lifelong.hot_functions exe report in
  Alcotest.(check bool) "hot_helper detected as hot" true
    (match List.assoc_opt "hot_helper" hot with
    | Some n -> n >= 400
    | None -> false);
  (* idle-time reoptimization with the field profile *)
  let reopt = Lifelong.reoptimize_with_profile exe report in
  Alcotest.(check bool) "hot call inlined" true (reopt.Lifelong.inlined_hot_calls >= 1);
  (* second run: same behaviour, fewer executed instructions *)
  let report2 = Lifelong.run_in_the_field exe in
  Alcotest.(check string) "behaviour preserved"
    (Fmt.str "%a" Llvm_exec.Interp.pp_rtval
       (match report.Lifelong.result.Llvm_exec.Interp.status with
       | `Returned v -> v
       | _ -> Alcotest.fail "first run failed"))
    (Fmt.str "%a" Llvm_exec.Interp.pp_rtval
       (match report2.Lifelong.result.Llvm_exec.Interp.status with
       | `Returned v -> v
       | _ -> Alcotest.fail "second run failed"));
  let after_instrs = report2.Lifelong.result.Llvm_exec.Interp.instructions in
  Alcotest.(check bool)
    (Printf.sprintf "faster after reoptimization (%d -> %d)" baseline_instrs
       after_instrs)
    true
    (after_instrs < baseline_instrs)

let tests =
  [ Alcotest.test_case "declarations resolve to definitions" `Quick
      test_link_resolves_declarations;
    Alcotest.test_case "definition-first linking" `Quick
      test_link_definition_then_declaration;
    Alcotest.test_case "internal symbols are renamed apart" `Quick
      test_link_renames_internal_collisions;
    Alcotest.test_case "duplicate definitions rejected" `Quick
      test_link_duplicate_definition_fails;
    Alcotest.test_case "globals link across units" `Quick
      test_link_globals_across_units;
    Alcotest.test_case "internalize enables whole-program DGE" `Quick
      test_internalize_enables_dge;
    Alcotest.test_case "lifelong: build, profile, reoptimize" `Quick
      test_lifelong_pipeline ]

(* Code generator tests: lowering, register allocation, and the two
   target size models behind Figure 5. *)

open Llvm_ir
open Ir
open Llvm_codegen

let compile_src src =
  let m = Llvm_minic.Codegen.compile_string src in
  Llvm_transforms.Pipelines.optimize_module ~level:2 m;
  m

let test_lowering_produces_code () =
  let m = Samples.fact_module () in
  let mm = Isel.select_module m in
  Alcotest.(check int) "one function" 1 (List.length mm.Mir.mfuncs);
  let mf = List.hd mm.Mir.mfuncs in
  Alcotest.(check bool) "nonempty code" true (List.length mf.Mir.code > 5);
  (* no phis survive lowering: every operand is concrete *)
  List.iter
    (fun i ->
      let defs, uses = Mir.defs_uses i in
      List.iter
        (fun o ->
          match o with
          | Mir.Lbl _ -> Alcotest.fail "label used as data operand"
          | _ -> ())
        (defs @ uses))
    mf.Mir.code

let test_regalloc_bounds_registers () =
  (* a function with many simultaneously live values forces spills *)
  let m = mk_module "pressure" in
  let b = Builder.for_module m in
  let f =
    Builder.start_function b m "pressure" Ltype.int_ [ ("x", Ltype.int_) ]
  in
  let x = Varg (List.hd f.fargs) in
  (* 20 values all live until the end *)
  let vals =
    List.init 20 (fun k ->
        Builder.build_add b x (Vconst (cint Ltype.Int (Int64.of_int k))))
  in
  let sum =
    List.fold_left (fun acc v -> Builder.build_add b acc v)
      (Vconst (cint Ltype.Int 0L)) vals
  in
  ignore (Builder.build_ret b (Some sum));
  let mf = Isel.select_function m.mtypes f in
  let allocated, spills = Regalloc.allocate mf ~num_regs:7 in
  Alcotest.(check bool) "spills happened" true (spills > 0);
  (* after allocation no virtual registers remain *)
  List.iter
    (fun i ->
      let defs, uses = Mir.defs_uses i in
      List.iter
        (fun o ->
          match o with
          | Mir.Vreg _ -> Alcotest.fail "virtual register survived allocation"
          | _ -> ())
        (defs @ uses))
    allocated.Mir.code;
  (* physical registers stay in range *)
  List.iter
    (fun i ->
      let defs, uses = Mir.defs_uses i in
      List.iter
        (fun o ->
          match o with
          | Mir.Preg r -> Alcotest.(check bool) "preg in range" true (r < 7)
          | _ -> ())
        (defs @ uses))
    allocated.Mir.code

let test_riscs_bigger_than_cisc () =
  (* the central Figure 5 shape: fixed 4-byte RISC code is bigger *)
  let src =
    {| struct Item { int key; int weight; struct Item* next; };
       int knapsack(struct Item* items, int cap) {
         int best = 0;
         struct Item* it = items;
         while (it != null) {
           if (it->weight <= cap) {
             int v = it->key + knapsack(it->next, cap - it->weight);
             if (v > best) best = v;
           }
           it = it->next;
         }
         return best;
       }
       int main() {
         struct Item* head = null;
         for (int i = 1; i <= 8; i++) {
           struct Item* it = new struct Item;
           it->key = i * 3; it->weight = i; it->next = head; head = it;
         }
         return knapsack(head, 10);
       } |}
  in
  let m = compile_src src in
  let x86 = Emit.code_size Target.x86ish m in
  let sparc = Emit.code_size Target.sparcish m in
  Alcotest.(check bool)
    (Printf.sprintf "sparc (%d) > x86 (%d)" sparc x86)
    true (sparc > x86);
  Alcotest.(check bool) "both nonzero" true (x86 > 0 && sparc > 0)

let test_emitted_assembly_text () =
  let m = Samples.fact_module () in
  let r = Emit.compile_module Target.x86ish m in
  let fa = List.hd r.Emit.funcs in
  Alcotest.(check bool) "has function label" true
    (Astring_contains.contains fa.Emit.fa_text "fact:");
  Alcotest.(check bool) "has a ret" true
    (Astring_contains.contains fa.Emit.fa_text "ret")

let test_deterministic_sizes () =
  let m1 = Samples.kitchen_sink_module () in
  let m2 = Samples.kitchen_sink_module () in
  Alcotest.(check int) "same module, same size"
    (Emit.code_size Target.x86ish m1)
    (Emit.code_size Target.x86ish m2)

let test_data_section_counted () =
  let m = Samples.kitchen_sink_module () in
  let r = Emit.compile_module Target.x86ish m in
  (* counter (4) + table (12) *)
  Alcotest.(check int) "data bytes" 16 r.Emit.data_bytes

let tests =
  [ Alcotest.test_case "lowering produces machine code" `Quick
      test_lowering_produces_code;
    Alcotest.test_case "register allocation with spills" `Quick
      test_regalloc_bounds_registers;
    Alcotest.test_case "RISC code is bigger than CISC" `Quick
      test_riscs_bigger_than_cisc;
    Alcotest.test_case "assembly text output" `Quick test_emitted_assembly_text;
    Alcotest.test_case "deterministic sizes" `Quick test_deterministic_sizes;
    Alcotest.test_case "data section accounting" `Quick test_data_section_counted ]

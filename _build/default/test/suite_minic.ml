(* End-to-end front-end tests: MiniC source -> IR -> interpreter.

   Every program is verified, executed unoptimized, then optimized with
   the full pipeline and executed again; both runs must agree. *)

open Llvm_ir
open Llvm_exec
open Llvm_minic

let compile src =
  let m = Codegen.compile_string src in
  (match Verify.verify_module m with
  | [] -> ()
  | errs ->
    Alcotest.failf "front-end produced invalid IR: %s\n%s"
      (Fmt.str "%a" Fmt.(list Verify.pp_error) errs)
      (Printer.module_to_string m));
  m

let run_src src : string * int64 =
  let m = compile src in
  let r = Interp.run_main m in
  match r.Interp.status with
  | `Returned (Interp.Rint (_, v)) -> (r.Interp.output, v)
  | `Returned Interp.Rvoid -> (r.Interp.output, 0L)
  | `Returned v -> Alcotest.failf "odd result %a" Interp.pp_rtval v
  | `Trapped msg ->
    Alcotest.failf "trapped: %s\n%s" msg (Printer.module_to_string m)
  | `Unwound -> Alcotest.failf "uncaught exception"
  | `Exited c -> (r.Interp.output, Int64.of_int c)

(* optimized and unoptimized behaviour must match *)
let run_both src : string * int64 =
  let plain = run_src src in
  let m = compile src in
  Llvm_transforms.Pipelines.optimize_module ~level:3 m;
  (match Verify.verify_module m with
  | [] -> ()
  | errs ->
    Alcotest.failf "optimizer broke front-end output: %s"
      (Fmt.str "%a" Fmt.(list Verify.pp_error) errs));
  let r = Interp.run_main m in
  let opt =
    match r.Interp.status with
    | `Returned (Interp.Rint (_, v)) -> (r.Interp.output, v)
    | `Returned Interp.Rvoid -> (r.Interp.output, 0L)
    | `Returned v -> Alcotest.failf "odd result %a" Interp.pp_rtval v
    | `Trapped msg -> Alcotest.failf "optimized code trapped: %s" msg
    | `Unwound -> Alcotest.failf "optimized code unwound"
    | `Exited c -> (r.Interp.output, Int64.of_int c)
  in
  Alcotest.(check (pair string int64)) "optimized matches unoptimized" plain opt;
  plain

let check_result src expected =
  let _, v = run_both src in
  Alcotest.(check int64) "result" expected v

let check_output src expected =
  let out, _ = run_both src in
  Alcotest.(check string) "output" expected out

let test_arith () =
  check_result "int main() { return 2 + 3 * 4 - 6 / 2; }" 11L;
  check_result "int main() { int x = 10; x += 5; x *= 2; return x; }" 30L;
  check_result "int main() { return 7 % 3; }" 1L;
  check_result "int main() { uint x = 0; x = x - 1; return x > 100; }" 1L;
  check_result "int main() { return (3 < 4) + (4 <= 4) + (5 > 9); }" 2L

let test_control_flow () =
  check_result
    {| int main() {
         int sum = 0;
         for (int i = 0; i < 10; i++) { if (i % 2 == 0) continue; sum += i; }
         return sum;  // 1+3+5+7+9
       } |}
    25L;
  check_result
    {| int main() {
         int n = 0;
         while (true) { n++; if (n == 7) break; }
         return n;
       } |}
    7L;
  check_result
    {| int main() {
         int n = 0;
         do { n += 3; } while (n < 10);
         return n;
       } |}
    12L;
  check_result "int main() { int x = 5; return x > 3 ? 10 : 20; }" 10L;
  check_result
    "int main() { int a = 1; int b = 0; return (a && b) + (a || b) * 10; }" 10L

let test_functions_and_recursion () =
  check_result
    {| int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
       int main() { return fib(12); } |}
    144L;
  check_result
    {| static int helper(int a, int b) { return a * b; }
       int main() { return helper(6, 7); } |}
    42L

let test_pointers_and_arrays () =
  check_result
    {| int main() {
         int a[5];
         for (int i = 0; i < 5; i++) a[i] = i * i;
         int* p = &a[0];
         return p[2] + *(p + 3) + a[4];  // 4 + 9 + 16
       } |}
    29L;
  check_result
    {| void swap(int* x, int* y) { int t = *x; *x = *y; *y = t; }
       int main() { int a = 3; int b = 9; swap(&a, &b); return a * 10 + b; } |}
    93L

let test_structs () =
  check_result
    {| struct Point { int x; int y; };
       int main() {
         struct Point p;
         p.x = 3; p.y = 4;
         struct Point* q = &p;
         q->x = q->x + 10;
         return p.x * 100 + p.y;
       } |}
    1304L;
  check_result
    {| struct Node { int value; struct Node* next; };
       int main() {
         struct Node* head = null;
         for (int i = 1; i <= 4; i++) {
           struct Node* n = new struct Node;
           n->value = i; n->next = head; head = n;
         }
         int sum = 0;
         while (head != null) { sum += head->value; head = head->next; }
         return sum;
       } |}
    10L

let test_heap () =
  check_result
    {| int main() {
         int* buf = new int[10];
         for (int i = 0; i < 10; i++) buf[i] = i;
         int sum = 0;
         for (int i = 0; i < 10; i++) sum += buf[i];
         delete buf;
         return sum;
       } |}
    45L

let test_globals () =
  check_result
    {| int counter = 100;
       static int step = 7;
       void bump() { counter += step; }
       int main() { bump(); bump(); return counter; } |}
    114L

let test_casts () =
  check_result
    {| int main() {
         double d = 3.9;
         int i = (int)d;
         char c = (char)(i + 300);  // truncates
         long l = (long)c;
         return (int)l + 100;
       } |}
    147L;
  check_result
    {| int main() {
         void* p = (void*)new int;
         int* q = (int*)p;
         *q = 11;
         return *q;
       } |}
    11L

let test_strings_and_io () =
  check_output
    {| extern void print_str(char* s);
       extern void print_int(int x);
       int main() { print_str("x="); print_int(42); return 0; } |}
    "x=42"

let test_function_pointers () =
  check_result
    {| int twice(int x) { return x * 2; }
       int thrice(int x) { return x * 3; }
       int main() {
         int (*)(int) f = twice;
         int a = f(10);
         f = thrice;
         return a + f(10);
       } |}
    50L

let test_classes_virtual () =
  check_result
    {| class Shape {
         public:
         int tag;
         virtual int area() { return 0; }
         int describe() { return tag * 1000 + area(); }
       };
       class Rect : public Shape {
         public:
         int w;
         int h;
         virtual int area() { return w * h; }
       };
       class Square : public Rect {
         public:
         virtual int area() { return w * w; }
       };
       int main() {
         Rect* r = new Rect;
         r->tag = 1; r->w = 3; r->h = 5;
         Square* s = new Square;
         s->tag = 2; s->w = 4;
         Shape* a = (Shape*)r;
         Shape* b = (Shape*)s;
         return a->area() + b->area() + b->describe();  // 15 + 16 + 2016
       } |}
    2047L

let test_class_fields_in_methods () =
  check_result
    {| class Counter {
         public:
         int n;
         void add(int k) { n = n + k; }
         int get() { return n; }
       };
       int main() {
         Counter* c = new Counter;
         c->n = 0;
         c->add(5); c->add(7);
         return c->get();
       } |}
    12L

let test_exceptions_basic () =
  check_result
    {| int risky(int x) { if (x > 10) throw 99; return x; }
       int main() {
         int got = 0;
         try { got = risky(50); } catch (int e) { got = e; }
         return got;
       } |}
    99L;
  check_result
    {| int risky(int x) { if (x > 10) throw 99; return x; }
       int main() {
         int got = 0;
         try { got = risky(5); } catch (int e) { got = e + 1000; }
         return got;
       } |}
    5L

let test_exceptions_propagate () =
  check_result
    {| int inner() { throw 7; }
       int middle() { return inner() + 1; }   // no handler here
       int main() {
         try { return middle(); } catch (int e) { return e * 2; }
       } |}
    14L

let test_exceptions_nested () =
  check_result
    {| int main() {
         int log = 0;
         try {
           try {
             throw 3;
           } catch (int e) {
             log = log + e;       // 3
             throw 40;            // rethrow from the handler region
           }
         } catch (int e2) {
           log = log + e2;        // +40
         }
         return log;
       } |}
    43L

let test_exceptions_type_dispatch () =
  (* a double exception is not caught by an int handler; it unwinds on *)
  check_result
    {| int thrower() { throw 2.5; }
       int main() {
         try {
           try { return thrower(); } catch (int e) { return 1; }
         } catch (double d) { return (int)(d * 4.0); }
       } |}
    10L

let test_uncaught_exception () =
  let m = compile "int main() { throw 13; }" in
  let r = Interp.run_main m in
  match r.Interp.status with
  | `Unwound -> ()
  | _ -> Alcotest.fail "expected the program to unwind off main"

let test_output_in_loops () =
  check_output
    {| extern int putchar(int c);
       int main() {
         for (int i = 0; i < 3; i++) putchar('a' + i);
         return 0;
       } |}
    "abc"

let tests =
  [ Alcotest.test_case "arithmetic and assignment" `Quick test_arith;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "functions and recursion" `Quick test_functions_and_recursion;
    Alcotest.test_case "pointers and arrays" `Quick test_pointers_and_arrays;
    Alcotest.test_case "structs and linked data" `Quick test_structs;
    Alcotest.test_case "heap allocation" `Quick test_heap;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "casts" `Quick test_casts;
    Alcotest.test_case "strings and io" `Quick test_strings_and_io;
    Alcotest.test_case "function pointers" `Quick test_function_pointers;
    Alcotest.test_case "classes and virtual dispatch" `Quick test_classes_virtual;
    Alcotest.test_case "implicit this in methods" `Quick test_class_fields_in_methods;
    Alcotest.test_case "try/catch basics" `Quick test_exceptions_basic;
    Alcotest.test_case "exceptions cross frames" `Quick test_exceptions_propagate;
    Alcotest.test_case "nested try/catch" `Quick test_exceptions_nested;
    Alcotest.test_case "catch dispatch by type" `Quick test_exceptions_type_dispatch;
    Alcotest.test_case "uncaught exceptions unwind" `Quick test_uncaught_exception;
    Alcotest.test_case "output in loops" `Quick test_output_in_loops ]

let test_setjmp_longjmp_local () =
  (* the paper (section 2.4): setjmp/longjmp are implemented with the
     same invoke/unwind machinery as exceptions *)
  check_result
    {| long buf = 0;
       static int helper(int x) {
         if (x > 5) longjmp(&buf, x * 2);
         return x;
       }
       int main() {
         int r = setjmp(&buf);
         if (r == 0) {
           return helper(10);   // longjmps back with 20
         }
         return r + 100;        // 120
       } |}
    120L;
  check_result
    {| long buf = 0;
       static int helper(int x) {
         if (x > 5) longjmp(&buf, x * 2);
         return x;
       }
       int main() {
         int r = setjmp(&buf);
         if (r == 0) {
           return helper(3);    // no longjmp: returns 3
         }
         return r + 100;
       } |}
    3L

let test_longjmp_across_frames () =
  check_result
    {| long buf = 0;
       static int deep(int n) {
         if (n == 0) longjmp(&buf, 77);
         return deep(n - 1);
       }
       int main() {
         int r = setjmp(&buf);
         if (r == 0) return deep(4);
         return r;
       } |}
    77L

let test_longjmp_and_exceptions_coexist () =
  (* "both coexist cleanly in our implementation" (section 2.4): a
     longjmp passes through a try/catch without being caught by it *)
  check_result
    {| long buf = 0;
       static int jumper() { longjmp(&buf, 9); return 0; }
       int main() {
         int r = setjmp(&buf);
         if (r != 0) return r * 3;          // 27
         try { return jumper(); } catch (int e) { return 1000; }
       } |}
    27L

let sjlj_tests =
  [ Alcotest.test_case "setjmp/longjmp basics" `Quick test_setjmp_longjmp_local;
    Alcotest.test_case "longjmp across frames" `Quick test_longjmp_across_frames;
    Alcotest.test_case "longjmp passes through try/catch" `Quick
      test_longjmp_and_exceptions_coexist ]

let tests = tests @ sjlj_tests

let test_switch_statement () =
  check_result
    {| static int classify(int x) {
         int r = 0;
         switch (x) {
           case 1: r = 10;
           case 2: r = 20;
           case 7: { int t = x * 2; r = t + 1; }
           default: r = -1;
         }
         return r;
       }
       int main() {
         return classify(1) * 1000000 + classify(2) * 10000
              + classify(7) * 100 + (classify(9) + 2);
       } |}
    10201501L;
  (* switch with break and fallthrough-free semantics inside loops *)
  check_result
    {| int main() {
         int acc = 0;
         for (int i = 0; i < 6; i++) {
           switch (i % 3) {
             case 0: acc += 1;
             case 1: acc += 10;
             default: acc += 100;
           }
         }
         return acc;  // 2*(1+10+100) = 222
       } |}
    222L;
  (* a char-typed scrutinee with char cases *)
  check_result
    {| static int vowel(char c) {
         switch (c) {
           case 'a': return 1;
           case 'e': return 1;
           case 'i': return 1;
           default: return 0;
         }
       }
       int main() { return vowel('e') * 10 + vowel('z'); } |}
    10L

let test_switch_emits_ir_switch () =
  let m =
    compile
      {| int main(int x) {
           switch (x) { case 0: return 5; case 1: return 6; default: return 7; }
         } |}
  in
  let main = Option.get (Ir.find_func m "main") in
  let switches =
    Ir.fold_instrs (fun n i -> if i.Ir.iop = Ir.Switch then n + 1 else n) 0 main
  in
  Alcotest.(check int) "front-end emits the switch opcode" 1 switches

let switch_tests =
  [ Alcotest.test_case "switch statements" `Quick test_switch_statement;
    Alcotest.test_case "switch lowers to the switch opcode" `Quick
      test_switch_emits_ir_switch ]

let tests = tests @ switch_tests

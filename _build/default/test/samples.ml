(* Shared sample modules used across test suites. *)

open Llvm_ir
open Ir

(* int add1(int x) { return x + 1; } *)
let add1_module () =
  let m = mk_module "add1" in
  let b = Builder.for_module m in
  let f =
    Builder.start_function b m ~linkage:External "add1" Ltype.int_
      [ ("x", Ltype.int_) ]
  in
  let x = Varg (List.hd f.fargs) in
  let sum = Builder.build_add b ~name:"sum" x (Vconst (cint Ltype.Int 1L)) in
  ignore (Builder.build_ret b (Some sum));
  m

(* Iterative factorial with a loop, allocas promoted later by mem2reg. *)
let fact_module () =
  let m = mk_module "fact" in
  let b = Builder.for_module m in
  let f =
    Builder.start_function b m ~linkage:External "fact" Ltype.int_
      [ ("n", Ltype.int_) ]
  in
  let n = Varg (List.hd f.fargs) in
  let acc_slot = Builder.build_alloca b ~name:"acc" Ltype.int_ in
  let i_slot = Builder.build_alloca b ~name:"i" Ltype.int_ in
  let one = Vconst (cint Ltype.Int 1L) in
  ignore (Builder.build_store b one acc_slot);
  ignore (Builder.build_store b one i_slot);
  let loop = Builder.append_new_block b f "loop" in
  let body = Builder.append_new_block b f "body" in
  let exit = Builder.append_new_block b f "exit" in
  ignore (Builder.build_br b loop);
  Builder.position_at_end b loop;
  let i = Builder.build_load b ~name:"iv" i_slot in
  let cond = Builder.build_setle b ~name:"cond" i n in
  ignore (Builder.build_condbr b cond body exit);
  Builder.position_at_end b body;
  let acc = Builder.build_load b ~name:"av" acc_slot in
  let acc' = Builder.build_mul b ~name:"av2" acc i in
  ignore (Builder.build_store b acc' acc_slot);
  let i' = Builder.build_add b ~name:"iv2" i one in
  ignore (Builder.build_store b i' i_slot);
  ignore (Builder.build_br b loop);
  Builder.position_at_end b exit;
  let result = Builder.build_load b ~name:"result" acc_slot in
  ignore (Builder.build_ret b (Some result));
  m

(* A module exercising structs, geps, globals, casts, switch, phi, and a
   recursive named type (a linked list). *)
let kitchen_sink_module () =
  let m = mk_module "sink" in
  define_type m "node"
    (Ltype.struct_ [ Ltype.int_; Ltype.pointer (Ltype.Named "node") ]);
  let b = Builder.for_module m in
  let g =
    mk_gvar ~linkage:Internal ~name:"counter" ~ty:Ltype.int_
      ~init:(cint Ltype.Int 0L) ()
  in
  add_gvar m g;
  let tbl =
    mk_gvar ~linkage:Internal ~constant:true ~name:"table"
      ~ty:(Ltype.array 3 Ltype.int_)
      ~init:
        (Carray (Ltype.int_, [ cint Ltype.Int 10L; cint Ltype.Int 20L; cint Ltype.Int 30L ]))
      ()
  in
  add_gvar m tbl;
  let f =
    Builder.start_function b m ~linkage:External "sum_list" Ltype.int_
      [ ("head", Ltype.pointer (Ltype.Named "node")); ("sel", Ltype.int_) ]
  in
  let head = Varg (List.nth f.fargs 0) in
  let sel = Varg (List.nth f.fargs 1) in
  let entry = Builder.insertion_block b in
  let loop = Builder.append_new_block b f "loop" in
  let body = Builder.append_new_block b f "body" in
  let exit = Builder.append_new_block b f "exit" in
  let case1 = Builder.append_new_block b f "case1" in
  ignore
    (Builder.build_switch b sel loop
       [ (cint Ltype.Int 1L, case1); (cint Ltype.Int 2L, loop) ]);
  Builder.position_at_end b case1;
  let t0 = Builder.build_gep_const b ~name:"slot" (Vglobal tbl) [ 0; 1 ] in
  let t1 = Builder.build_load b ~name:"tv" t0 in
  ignore (Builder.build_store b t1 (Vglobal g));
  ignore (Builder.build_br b loop);
  Builder.position_at_end b loop;
  let phi_sum =
    Builder.build_phi b ~name:"sum" Ltype.int_
      [ (Vconst (cint Ltype.Int 0L), entry); (Vconst (cint Ltype.Int 0L), case1) ]
  in
  let phi_cur =
    Builder.build_phi b ~name:"cur" (Ltype.pointer (Ltype.Named "node"))
      [ (head, entry); (head, case1) ]
  in
  let isnull =
    Builder.build_seteq b ~name:"isnull" phi_cur
      (Vconst (Cnull (Ltype.pointer (Ltype.Named "node"))))
  in
  ignore (Builder.build_condbr b isnull exit body);
  Builder.position_at_end b body;
  let vptr = Builder.build_gep_const b ~name:"vptr" phi_cur [ 0; 0 ] in
  let v = Builder.build_load b ~name:"v" vptr in
  let sum' = Builder.build_add b ~name:"sum2" phi_sum v in
  let nptr = Builder.build_gep_const b ~name:"nptr" phi_cur [ 0; 1 ] in
  let nxt = Builder.build_load b ~name:"nxt" nptr in
  (match (phi_sum, phi_cur) with
  | Vinstr ps, Vinstr pc ->
    phi_add_incoming ps sum' body;
    phi_add_incoming pc nxt body
  | _ -> assert false);
  ignore (Builder.build_br b loop);
  Builder.position_at_end b exit;
  let widened = Builder.build_cast b ~name:"wide" phi_sum Ltype.long in
  let narrowed = Builder.build_cast b ~name:"narrow" widened Ltype.int_ in
  ignore (Builder.build_ret b (Some narrowed));
  m

(* A module with invoke/unwind: caller invokes may_throw and cleans up. *)
let exceptions_module () =
  let m = mk_module "eh" in
  let b = Builder.for_module m in
  let may_throw =
    Builder.start_function b m ~linkage:Internal "may_throw" Ltype.void
      [ ("do_throw", Ltype.bool_) ]
  in
  let cond = Varg (List.hd may_throw.fargs) in
  let throw_bb = Builder.append_new_block b may_throw "throw" in
  let ok_bb = Builder.append_new_block b may_throw "ok" in
  ignore (Builder.build_condbr b cond throw_bb ok_bb);
  Builder.position_at_end b throw_bb;
  ignore (Builder.build_unwind b);
  Builder.position_at_end b ok_bb;
  ignore (Builder.build_ret b None);
  let caller =
    Builder.start_function b m ~linkage:External "caller" Ltype.int_
      [ ("do_throw", Ltype.bool_) ]
  in
  let arg = Varg (List.hd caller.fargs) in
  let normal = Builder.append_new_block b caller "normal" in
  let cleanup = Builder.append_new_block b caller "cleanup" in
  ignore (Builder.build_invoke b (Vfunc may_throw) [ arg ] ~normal ~unwind:cleanup);
  Builder.position_at_end b normal;
  ignore (Builder.build_ret b (Some (Vconst (cint Ltype.Int 0L))));
  Builder.position_at_end b cleanup;
  ignore (Builder.build_ret b (Some (Vconst (cint Ltype.Int 1L))));
  m

let all () =
  [ add1_module (); fact_module (); kitchen_sink_module (); exceptions_module () ]

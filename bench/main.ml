(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (section 4).

   Subcommands (run them all with no arguments):
     table1    — Table 1: provably-typed static loads/stores per benchmark
     table1 --no-fields — ablation: field-insensitive DSA variant
     table2    — Table 2: link-time IPO timings (DGE, DAE, inline) vs a
                 full-recompile baseline, plus transformation counts
     table2 --raw — ablation: the same passes on unpromoted (non-SSA) IR
     figure5   — Figure 5: executable sizes (LLVM bitcode / X86 / Sparc)
                 plus the compressibility observation of section 4.1.3
     lifelong  — the Figure 4 pipeline: build, profile in the field,
                 idle-time reoptimize, rerun
     lint      — per-checker llvm-lint finding counts over the Table-1
                 workloads (analyzer precision tracked like a benchmark)
     micro     — bechamel microbenchmarks of representation operations *)

open Llvm_ir
open Llvm_workloads

let say fmt = Fmt.pr (fmt ^^ "@.")

let time_it (f : unit -> 'a) : 'a * float =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Compile a benchmark the way the paper's pipeline does: front-end to
   IR, link (single translation unit here), internalize. *)
let build_benchmark (p : Genprog.profile) : Ir.modul =
  let m = Genprog.compile p in
  Llvm_linker.Link.internalize m;
  m

(* -- Table 1 -------------------------------------------------------------- *)

let table1 ?(field_sensitive = true) () =
  say "Table 1: Loads and Stores which are provably typed";
  say "(percent of static memory accesses with reliable type information,";
  say " computed by DSA over the linked program after stack promotion)";
  if not field_sensitive then
    say "*** ABLATION: field-insensitive points-to variant ***";
  say "";
  say "%-14s %8s %8s %9s %10s" "Benchmark" "Typed" "Untyped" "Typed%" "Paper%";
  let total_pct = ref 0.0 in
  let n = ref 0 in
  List.iter
    (fun p ->
      let m = build_benchmark p in
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Sroa.pass m);
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
      let s = Llvm_analysis.Dsa.compute_stats ~field_sensitive m in
      total_pct := !total_pct +. s.Llvm_analysis.Dsa.typed_percent;
      incr n;
      say "%-14s %8d %8d %8.1f%% %9.1f%%" p.Genprog.p_name
        s.Llvm_analysis.Dsa.typed_accesses s.Llvm_analysis.Dsa.untyped_accesses
        s.Llvm_analysis.Dsa.typed_percent p.Genprog.expected_typed_pct)
    Spec.spec2000;
  say "%-14s %8s %8s %8.1f%% %9.1f%%" "average" "" ""
    (!total_pct /. float_of_int !n)
    68.04;
  say "";
  say "Disciplined programs (Olden/Ptrdist style; the paper: 'close to 100%%'):";
  List.iter
    (fun p ->
      let m = build_benchmark p in
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Sroa.pass m);
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
      let s = Llvm_analysis.Dsa.compute_stats ~field_sensitive m in
      say "%-14s %8d %8d %8.1f%%" p.Genprog.p_name
        s.Llvm_analysis.Dsa.typed_accesses s.Llvm_analysis.Dsa.untyped_accesses
        s.Llvm_analysis.Dsa.typed_percent)
    Spec.disciplined;
  say ""

(* -- Table 2 -------------------------------------------------------------- *)

(* The baseline stands in for "GCC 3.3 -O3 compile time": our own full
   static pipeline — front-end parse, per-module optimization, and
   native code generation for one target. *)
let baseline_compile_seconds (p : Genprog.profile) : float =
  let src = Genprog.generate p in
  let _, t =
    time_it (fun () ->
        let m = Llvm_minic.Codegen.compile_string ~name:p.Genprog.p_name src in
        ignore
          (Llvm_transforms.Pass.run_sequence Llvm_transforms.Pipelines.per_module m);
        ignore (Llvm_codegen.Emit.compile_module Llvm_codegen.Target.x86ish m))
  in
  t

type t2_row = {
  r_name : string;
  dge_s : float;
  dae_s : float;
  inline_s : float;
  baseline_s : float;
  dge_funcs : int;
  dge_globals : int;
  dae_args : int;
  dae_rets : int;
  inlined : int;
}

let table2 ?(promote = true) () =
  say "Table 2: Interprocedural optimization timings (seconds)";
  say "(link-time passes on the whole program; 'Full compile' is our own";
  say " complete front-end + per-module -O + codegen pipeline, standing in";
  say " for the paper's GCC -O3 column)";
  if not promote then
    say "*** ABLATION: passes run on unpromoted (non-SSA) IR ***";
  say "";
  say "%-14s %8s %8s %8s %12s" "Benchmark" "DGE" "DAE" "inline" "Full compile";
  let rows =
    List.map
      (fun p ->
        (* fresh module per pass so each timing sees the original code *)
        let run_pass pass =
          let m = build_benchmark p in
          if promote then
            ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
          time_it (fun () -> pass m)
        in
        let dge_stats, dge_s = run_pass Llvm_transforms.Dge.run in
        let dae_stats, dae_s = run_pass Llvm_transforms.Dae.run in
        let inline_stats, inline_s =
          run_pass (Llvm_transforms.Inline.run ?threshold:None)
        in
        let baseline_s = baseline_compile_seconds p in
        { r_name = p.Genprog.p_name; dge_s; dae_s; inline_s; baseline_s;
          dge_funcs = dge_stats.Llvm_transforms.Dge.deleted_functions;
          dge_globals = dge_stats.Llvm_transforms.Dge.deleted_globals;
          dae_args = dae_stats.Llvm_transforms.Dae.removed_args;
          dae_rets = dae_stats.Llvm_transforms.Dae.removed_returns;
          inlined = inline_stats.Llvm_transforms.Inline.inlined_calls })
      Spec.spec2000
  in
  List.iter
    (fun r ->
      say "%-14s %8.4f %8.4f %8.4f %12.4f" r.r_name r.dge_s r.dae_s r.inline_s
        r.baseline_s)
    rows;
  let avg f =
    List.fold_left (fun a r -> a +. f r) 0.0 rows
    /. float_of_int (List.length rows)
  in
  say "%-14s %8.4f %8.4f %8.4f %12.4f" "average" (avg (fun r -> r.dge_s))
    (avg (fun r -> r.dae_s))
    (avg (fun r -> r.inline_s))
    (avg (fun r -> r.baseline_s));
  let speedup =
    avg (fun r -> r.baseline_s)
    /. Float.max 1e-9 (avg (fun r -> r.dge_s +. r.dae_s +. r.inline_s))
  in
  say "";
  say "IPO passes are %.0fx faster than a full recompile on average" speedup;
  say "(the paper: 'in all cases, the optimization time is substantially";
  say " less than that to compile the program with GCC').";
  say "";
  say "Transformation counts (the paper reports e.g. DGE deleting 331";
  say "functions and 557 globals from 255.vortex, inline inlining 1368";
  say "functions in 176.gcc):";
  say "%-14s %10s %12s %9s %9s %9s" "Benchmark" "DGE funcs" "DGE globals"
    "DAE args" "DAE rets" "inlined";
  List.iter
    (fun r ->
      say "%-14s %10d %12d %9d %9d %9d" r.r_name r.dge_funcs r.dge_globals
        r.dae_args r.dae_rets r.inlined)
    rows;
  say ""

(* -- Figure 5 -------------------------------------------------------------- *)

let figure5 () =
  say "Figure 5: Executable sizes for LLVM, X86, Sparc (in KB)";
  say "(same linked program compiled three ways; code + data)";
  say "";
  say "%-14s %9s %9s %9s %9s %14s" "Benchmark" "LLVM" "X86" "Sparc" "LLVM/X86"
    "1 - LLVM/Sparc";
  let totals = ref (0, 0, 0) in
  let one_word_total = ref 0 and wide_total = ref 0 in
  let compress_ratios = ref [] in
  List.iter
    (fun p ->
      let m = build_benchmark p in
      ignore
        (Llvm_transforms.Pass.run_sequence Llvm_transforms.Pipelines.per_module m);
      let bitcode, stats = Llvm_bitcode.Encoder.encode ~strip:true m in
      let x86 = Llvm_codegen.Emit.compile_module Llvm_codegen.Target.x86ish m in
      let sparc =
        Llvm_codegen.Emit.compile_module Llvm_codegen.Target.sparcish m
      in
      let llvm_bytes = String.length bitcode + x86.Llvm_codegen.Emit.data_bytes in
      let x86_bytes = x86.Llvm_codegen.Emit.total_bytes in
      let sparc_bytes = sparc.Llvm_codegen.Emit.total_bytes in
      let a, b, c = !totals in
      totals := (a + llvm_bytes, b + x86_bytes, c + sparc_bytes);
      one_word_total :=
        !one_word_total + stats.Llvm_bitcode.Encoder.one_word_instrs;
      wide_total := !wide_total + stats.Llvm_bitcode.Encoder.wide_instrs;
      compress_ratios := Compress.ratio bitcode :: !compress_ratios;
      say "%-14s %9.1f %9.1f %9.1f %9.2f %13.0f%%" p.Genprog.p_name
        (float_of_int llvm_bytes /. 1024.)
        (float_of_int x86_bytes /. 1024.)
        (float_of_int sparc_bytes /. 1024.)
        (float_of_int llvm_bytes /. float_of_int x86_bytes)
        (100. *. (1. -. (float_of_int llvm_bytes /. float_of_int sparc_bytes))))
    Spec.spec2000;
  let a, b, c = !totals in
  say "%-14s %9.1f %9.1f %9.1f %9.2f %13.0f%%" "total"
    (float_of_int a /. 1024.)
    (float_of_int b /. 1024.)
    (float_of_int c /. 1024.)
    (float_of_int a /. float_of_int b)
    (100. *. (1. -. (float_of_int a /. float_of_int c)));
  say "";
  say "The paper: LLVM code is 'about the same size as native X86";
  say "executables' and roughly 25%% smaller than Sparc code.";
  say "";
  let ow = !one_word_total and w = !wide_total in
  say "Instruction encodings (section 4.1.3): %d one-word (%.1f%%), %d wide"
    ow
    (100. *. float_of_int ow /. float_of_int (max 1 (ow + w)))
    w;
  let ratios = !compress_ratios in
  let avg_ratio =
    List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)
  in
  say "LZ77 compression shrinks bitcode to %.0f%% of its size on average"
    (100. *. avg_ratio);
  say "(the paper: bzip2 reduces bytecode files to about 50%% of their";
  say " uncompressed size).";
  say ""

(* -- Lifelong pipeline (Figure 4) ------------------------------------------- *)

(* A program with a hot region the *static* inliner must refuse (the
   callee is large and has several callers) but the profile-guided
   idle-time reoptimizer can specialize once field data shows where the
   time goes. *)
let lifelong_app =
  {|
static int table_mix(int x, int rounds) {
  int acc = x;
  for (int r = 0; r < rounds; r++) {
    acc = (acc * 1103515245 + 12345) & 1073741823;
    acc = acc ^ (acc >> 7);
    acc = acc + (acc << 3);
    acc = acc & 16777215;
    acc = acc - (acc >> 2);
    acc = acc | (x & 255);
    acc = acc ^ (acc >> 11);
    acc = acc + x;
    acc = acc & 1073741823;
    acc = acc ^ (acc >> 5);
    acc = acc + (acc << 1);
    acc = acc & 536870911;
    acc = acc - (x >> 1);
    acc = acc ^ (acc >> 13);
    acc = acc + (x * 3);
    acc = acc & 1073741823;
    acc = acc | (acc >> 9);
    acc = acc ^ (x << 2);
    acc = acc & 268435455;
  }
  return acc;
}
static int cold_path(int x) { return table_mix(x, 1); }
int main() {
  int total = 0;
  for (int i = 0; i < 2000; i++) total ^= table_mix(i & 127, 2);
  if ((total & 4095) == 777) total ^= cold_path(total);  // cold caller
  return total & 63;
}
|}

let lifelong () =
  say "Lifelong compilation pipeline (Figure 4 / sections 3.5-3.6)";
  say "";
  let unit_ = Llvm_minic.Codegen.compile_string ~name:"hotapp" lifelong_app in
  let exe = Llvm_linker.Lifelong.build [ unit_ ] in
  say "built %s: bitcode %d bytes, native X86 %d bytes, Sparc %d bytes"
    "hotapp"
    (String.length exe.Llvm_linker.Lifelong.bitcode)
    exe.Llvm_linker.Lifelong.native_x86_bytes
    exe.Llvm_linker.Lifelong.native_sparc_bytes;
  let report = Llvm_linker.Lifelong.run_in_the_field ~fuel:200_000_000 exe in
  let before = report.Llvm_linker.Lifelong.result.Llvm_exec.Interp.instructions in
  say "field run 1: %d instructions executed" before;
  let hot = Llvm_linker.Lifelong.hot_functions exe report in
  say "hottest functions:";
  List.iteri
    (fun k (name, count) -> if k < 5 then say "  %-24s %8d entries" name count)
    hot;
  let reopt = Llvm_linker.Lifelong.reoptimize_with_profile exe report in
  say "idle-time reoptimizer: inlined %d hot call sites (%d -> %d instrs)"
    reopt.Llvm_linker.Lifelong.inlined_hot_calls
    reopt.Llvm_linker.Lifelong.before_instrs
    reopt.Llvm_linker.Lifelong.after_instrs;
  let report2 = Llvm_linker.Lifelong.run_in_the_field ~fuel:200_000_000 exe in
  let after = report2.Llvm_linker.Lifelong.result.Llvm_exec.Interp.instructions in
  say "field run 2: %d instructions executed (%.1f%% fewer)" after
    (100. *. (1. -. (float_of_int after /. float_of_int before)));
  say ""

(* -- SAFECode-style bounds checking (section 4.1.2) --------------------------- *)

let safecode () =
  say "SAFECode-style bounds checking (section 4.1.2)";
  say "(instrument every variable array index; eliminate the checks that";
  say " masking, constants or guarded induction variables prove safe)";
  say "";
  say "%-14s %9s %11s %9s" "Benchmark" "inserted" "eliminated" "removed%";
  let tot_i = ref 0 and tot_e = ref 0 in
  List.iter
    (fun p ->
      let m = build_benchmark p in
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Gvn.pass m);
      let inserted = Llvm_transforms.Boundscheck.insert m in
      let eliminated = Llvm_transforms.Boundscheck.eliminate m in
      tot_i := !tot_i + inserted;
      tot_e := !tot_e + eliminated;
      say "%-14s %9d %11d %8.0f%%" p.Genprog.p_name inserted eliminated
        (if inserted = 0 then 100.
         else 100. *. float_of_int eliminated /. float_of_int inserted))
    Spec.spec2000;
  say "%-14s %9d %11d %8.0f%%" "total" !tot_i !tot_e
    (if !tot_i = 0 then 100.
     else 100. *. float_of_int !tot_e /. float_of_int !tot_i);
  say "";
  say "(the paper: SAFECode 'uses interprocedural analysis to eliminate";
  say " runtime bounds checks in many cases')";
  say ""

(* -- Automatic pool allocation (sections 3.3 / 4.2.1) ------------------------- *)

let poolalloc () =
  say "Automatic Pool Allocation (sections 3.3 / 4.2.1)";
  say "(heap allocations whose DSA node cannot escape their function are";
  say " segregated into per-data-structure pools, bulk-freed on return)";
  say "";
  say "%-14s %8s %9s %9s %9s" "Benchmark" "mallocs" "pooled" "pools" "pooled%";
  let tot_m = ref 0 and tot_p = ref 0 and tot_pools = ref 0 in
  List.iter
    (fun p ->
      let m = build_benchmark p in
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
      let mallocs =
        List.fold_left
          (fun n f ->
            Ir.fold_instrs
              (fun n i -> if i.Ir.iop = Ir.Malloc then n + 1 else n)
              n f)
          0 m.Ir.mfuncs
      in
      let s = Llvm_transforms.Poolalloc.run m in
      (match Verify.verify_module m with
      | [] -> ()
      | errs ->
        Fmt.epr "%s: %a@." p.Genprog.p_name Fmt.(list Verify.pp_error) errs);
      tot_m := !tot_m + mallocs;
      tot_p := !tot_p + s.Llvm_transforms.Poolalloc.mallocs_pooled;
      tot_pools := !tot_pools + s.Llvm_transforms.Poolalloc.pools_created;
      say "%-14s %8d %9d %9d %8.0f%%" p.Genprog.p_name mallocs
        s.Llvm_transforms.Poolalloc.mallocs_pooled
        s.Llvm_transforms.Poolalloc.pools_created
        (if mallocs = 0 then 0.
         else
           100.
           *. float_of_int s.Llvm_transforms.Poolalloc.mallocs_pooled
           /. float_of_int mallocs))
    Spec.spec2000;
  say "%-14s %8d %9d %9d %8.0f%%" "total" !tot_m !tot_p !tot_pools
    (if !tot_m = 0 then 0.
     else 100. *. float_of_int !tot_p /. float_of_int !tot_m);
  say "";
  say "(the paper: DSA and Automatic Pool Allocation 'analyze and transform";
  say " programs in terms of their logical data structures')";
  say ""

(* -- Lint precision over the Table-1 workloads -------------------------------- *)

(* Tracked like a benchmark: per-checker finding counts over the same 15
   linked programs Table 1 analyzes, after the same stack promotion.
   Movement in a column is an analyzer precision (or program generator)
   change worth explaining. *)
let lint () =
  say "llvm-lint: static safety findings per checker";
  say "(over the linked Table-1 programs after SROA + mem2reg)";
  say "";
  let codes = List.map fst Llvm_analysis.Lint.all_codes in
  say "%-14s %s %6s" "Benchmark"
    (String.concat " " (List.map (Printf.sprintf "%5s") codes))
    "total";
  let totals = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let m = build_benchmark p in
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Sroa.pass m);
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
      let diags = Llvm_analysis.Lint.run m in
      let counts = Llvm_analysis.Lint.count_by_code diags in
      List.iter
        (fun (code, n) ->
          Hashtbl.replace totals code
            (n + Option.value ~default:0 (Hashtbl.find_opt totals code)))
        counts;
      say "%-14s %s %6d" p.Genprog.p_name
        (String.concat " "
           (List.map (fun (_, n) -> Printf.sprintf "%5d" n) counts))
        (List.length diags))
    Spec.spec2000;
  say "%-14s %s %6d" "total"
    (String.concat " "
       (List.map
          (fun code ->
            Printf.sprintf "%5d"
              (Option.value ~default:0 (Hashtbl.find_opt totals code)))
          codes))
    (Hashtbl.fold (fun _ n acc -> n + acc) totals 0);
  say "";
  say "(codes: %s)"
    (String.concat ", "
       (List.map
          (fun (c, name) -> c ^ " " ^ name)
          Llvm_analysis.Lint.all_codes));
  say ""

(* -- Microbenchmarks --------------------------------------------------------- *)

let micro () =
  let open Bechamel in
  let p = Option.get (Spec.find "186.crafty") in
  let m = build_benchmark p in
  ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
  let text = Printer.module_to_string m in
  let image, _ = Llvm_bitcode.Encoder.encode m in
  let tests =
    Test.make_grouped ~name:"llvm"
      [ Test.make ~name:"print-module"
          (Staged.stage (fun () -> ignore (Printer.module_to_string m)));
        Test.make ~name:"parse-module"
          (Staged.stage (fun () -> ignore (Llvm_asm.Parser.parse_module text)));
        Test.make ~name:"bitcode-encode"
          (Staged.stage (fun () -> ignore (Llvm_bitcode.Encoder.encode m)));
        Test.make ~name:"bitcode-decode"
          (Staged.stage (fun () -> ignore (Llvm_bitcode.Decoder.decode image)));
        Test.make ~name:"dominators-all-functions"
          (Staged.stage (fun () ->
               List.iter
                 (fun f ->
                   if not (Ir.is_declaration f) then
                     ignore (Llvm_analysis.Dominance.compute f))
                 m.Ir.mfuncs));
        Test.make ~name:"callgraph"
          (Staged.stage (fun () -> ignore (Llvm_analysis.Callgraph.compute m)));
        Test.make ~name:"dsa-points-to"
          (Staged.stage (fun () -> ignore (Llvm_analysis.Dsa.run m)));
        Test.make ~name:"gvn-on-fresh-module"
          (Staged.stage (fun () ->
               let fresh = Llvm_bitcode.Decoder.decode image in
               ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Gvn.pass fresh)));
        Test.make ~name:"mem2reg-on-fresh-module"
          (Staged.stage (fun () ->
               let fresh = Llvm_bitcode.Decoder.decode image in
               ignore
                 (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass fresh)))
      ]
  in
  let benchmark () =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
    in
    Benchmark.all cfg instances tests
  in
  let analyze raw =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  say "Microbenchmarks (bechamel, ns/run via OLS on the monotonic clock):";
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> say "  %-32s %14.1f ns/run" name est
      | Some _ | None -> say "  %-32s %14s" name "n/a")
    results;
  say ""

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "table1" :: rest ->
    table1 ~field_sensitive:(not (List.mem "--no-fields" rest)) ()
  | _ :: "table2" :: rest -> table2 ~promote:(not (List.mem "--raw" rest)) ()
  | _ :: "figure5" :: _ -> figure5 ()
  | _ :: "lifelong" :: _ -> lifelong ()
  | _ :: "safecode" :: _ -> safecode ()
  | _ :: "poolalloc" :: _ -> poolalloc ()
  | _ :: "lint" :: _ -> lint ()
  | _ :: "micro" :: _ -> micro ()
  | _ ->
    table1 ();
    table2 ();
    figure5 ();
    safecode ();
    poolalloc ();
    lint ();
    lifelong ()

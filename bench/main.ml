(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (section 4).

   Subcommands (run them all with no arguments):
     table1    — Table 1: provably-typed static loads/stores per benchmark
     table1 --no-fields — ablation: field-insensitive DSA variant
     table2    — Table 2: link-time IPO timings (DGE, DAE, inline) vs a
                 full-recompile baseline, plus transformation counts
     table2 --raw — ablation: the same passes on unpromoted (non-SSA) IR
     figure5   — Figure 5: executable sizes (LLVM bitcode / X86 / Sparc)
                 plus the compressibility observation of section 4.1.3
     lifelong  — the Figure 4 pipeline: build, profile in the field,
                 idle-time reoptimize, rerun
     lint      — per-checker llvm-lint finding counts over the Table-1
                 workloads (analyzer precision tracked like a benchmark)
     ranges    — value-range analysis: bounds checks eliminated, fast
                 bytecode ops, and exec-time delta per Table-1 workload
                 (BENCH_ranges.json; --quick for the CI variant)
     fuzz      — differential fuzzing smoke: multi-oracle consistency
                 over generated modules and semantics-preserving mutants
                 (BENCH_fuzz.json; --quick for the CI variant)
     micro     — bechamel microbenchmarks of representation operations *)

open Llvm_ir
open Llvm_workloads

let say fmt = Fmt.pr (fmt ^^ "@.")

let time_it (f : unit -> 'a) : 'a * float =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Compile a benchmark the way the paper's pipeline does: front-end to
   IR, link (single translation unit here), internalize. *)
let build_benchmark (p : Genprog.profile) : Ir.modul =
  let m = Genprog.compile p in
  Llvm_linker.Link.internalize m;
  m

(* -- Table 1 -------------------------------------------------------------- *)

let table1 ?(field_sensitive = true) () =
  say "Table 1: Loads and Stores which are provably typed";
  say "(percent of static memory accesses with reliable type information,";
  say " computed by DSA over the linked program after stack promotion)";
  if not field_sensitive then
    say "*** ABLATION: field-insensitive points-to variant ***";
  say "";
  say "%-14s %8s %8s %9s %10s" "Benchmark" "Typed" "Untyped" "Typed%" "Paper%";
  let total_pct = ref 0.0 in
  let n = ref 0 in
  List.iter
    (fun p ->
      let m = build_benchmark p in
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Sroa.pass m);
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
      let s = Llvm_analysis.Dsa.compute_stats ~field_sensitive m in
      total_pct := !total_pct +. s.Llvm_analysis.Dsa.typed_percent;
      incr n;
      say "%-14s %8d %8d %8.1f%% %9.1f%%" p.Genprog.p_name
        s.Llvm_analysis.Dsa.typed_accesses s.Llvm_analysis.Dsa.untyped_accesses
        s.Llvm_analysis.Dsa.typed_percent p.Genprog.expected_typed_pct)
    Spec.spec2000;
  say "%-14s %8s %8s %8.1f%% %9.1f%%" "average" "" ""
    (!total_pct /. float_of_int !n)
    68.04;
  say "";
  say "Disciplined programs (Olden/Ptrdist style; the paper: 'close to 100%%'):";
  List.iter
    (fun p ->
      let m = build_benchmark p in
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Sroa.pass m);
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
      let s = Llvm_analysis.Dsa.compute_stats ~field_sensitive m in
      say "%-14s %8d %8d %8.1f%%" p.Genprog.p_name
        s.Llvm_analysis.Dsa.typed_accesses s.Llvm_analysis.Dsa.untyped_accesses
        s.Llvm_analysis.Dsa.typed_percent)
    Spec.disciplined;
  say ""

(* -- Table 2 -------------------------------------------------------------- *)

(* The baseline stands in for "GCC 3.3 -O3 compile time": our own full
   static pipeline — front-end parse, per-module optimization, and
   native code generation for one target. *)
let baseline_compile_seconds (p : Genprog.profile) : float =
  let src = Genprog.generate p in
  let _, t =
    time_it (fun () ->
        let m = Llvm_minic.Codegen.compile_string ~name:p.Genprog.p_name src in
        ignore
          (Llvm_transforms.Pass.run_sequence Llvm_transforms.Pipelines.per_module m);
        ignore (Llvm_codegen.Emit.compile_module Llvm_codegen.Target.x86ish m))
  in
  t

type t2_row = {
  r_name : string;
  dge_s : float;
  dae_s : float;
  inline_s : float;
  baseline_s : float;
  dge_funcs : int;
  dge_globals : int;
  dae_args : int;
  dae_rets : int;
  inlined : int;
}

let table2 ?(promote = true) () =
  say "Table 2: Interprocedural optimization timings (seconds)";
  say "(link-time passes on the whole program; 'Full compile' is our own";
  say " complete front-end + per-module -O + codegen pipeline, standing in";
  say " for the paper's GCC -O3 column)";
  if not promote then
    say "*** ABLATION: passes run on unpromoted (non-SSA) IR ***";
  say "";
  say "%-14s %8s %8s %8s %12s" "Benchmark" "DGE" "DAE" "inline" "Full compile";
  let rows =
    List.map
      (fun p ->
        (* fresh module per pass so each timing sees the original code *)
        let run_pass pass =
          let m = build_benchmark p in
          if promote then
            ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
          time_it (fun () -> pass m)
        in
        let dge_stats, dge_s = run_pass Llvm_transforms.Dge.run in
        let dae_stats, dae_s = run_pass Llvm_transforms.Dae.run in
        let inline_stats, inline_s =
          run_pass (Llvm_transforms.Inline.run ?threshold:None)
        in
        let baseline_s = baseline_compile_seconds p in
        { r_name = p.Genprog.p_name; dge_s; dae_s; inline_s; baseline_s;
          dge_funcs = dge_stats.Llvm_transforms.Dge.deleted_functions;
          dge_globals = dge_stats.Llvm_transforms.Dge.deleted_globals;
          dae_args = dae_stats.Llvm_transforms.Dae.removed_args;
          dae_rets = dae_stats.Llvm_transforms.Dae.removed_returns;
          inlined = inline_stats.Llvm_transforms.Inline.inlined_calls })
      Spec.spec2000
  in
  List.iter
    (fun r ->
      say "%-14s %8.4f %8.4f %8.4f %12.4f" r.r_name r.dge_s r.dae_s r.inline_s
        r.baseline_s)
    rows;
  let avg f =
    List.fold_left (fun a r -> a +. f r) 0.0 rows
    /. float_of_int (List.length rows)
  in
  say "%-14s %8.4f %8.4f %8.4f %12.4f" "average" (avg (fun r -> r.dge_s))
    (avg (fun r -> r.dae_s))
    (avg (fun r -> r.inline_s))
    (avg (fun r -> r.baseline_s));
  let speedup =
    avg (fun r -> r.baseline_s)
    /. Float.max 1e-9 (avg (fun r -> r.dge_s +. r.dae_s +. r.inline_s))
  in
  say "";
  say "IPO passes are %.0fx faster than a full recompile on average" speedup;
  say "(the paper: 'in all cases, the optimization time is substantially";
  say " less than that to compile the program with GCC').";
  say "";
  say "Transformation counts (the paper reports e.g. DGE deleting 331";
  say "functions and 557 globals from 255.vortex, inline inlining 1368";
  say "functions in 176.gcc):";
  say "%-14s %10s %12s %9s %9s %9s" "Benchmark" "DGE funcs" "DGE globals"
    "DAE args" "DAE rets" "inlined";
  List.iter
    (fun r ->
      say "%-14s %10d %12d %9d %9d %9d" r.r_name r.dge_funcs r.dge_globals
        r.dae_args r.dae_rets r.inlined)
    rows;
  say ""

(* -- Figure 5 -------------------------------------------------------------- *)

let figure5 () =
  say "Figure 5: Executable sizes for LLVM, X86, Sparc (in KB)";
  say "(same linked program compiled three ways; code + data)";
  say "";
  say "%-14s %9s %9s %9s %9s %14s" "Benchmark" "LLVM" "X86" "Sparc" "LLVM/X86"
    "1 - LLVM/Sparc";
  let totals = ref (0, 0, 0) in
  let one_word_total = ref 0 and wide_total = ref 0 in
  let compress_ratios = ref [] in
  List.iter
    (fun p ->
      let m = build_benchmark p in
      ignore
        (Llvm_transforms.Pass.run_sequence Llvm_transforms.Pipelines.per_module m);
      let bitcode, stats = Llvm_bitcode.Encoder.encode ~strip:true m in
      let x86 = Llvm_codegen.Emit.compile_module Llvm_codegen.Target.x86ish m in
      let sparc =
        Llvm_codegen.Emit.compile_module Llvm_codegen.Target.sparcish m
      in
      let llvm_bytes = String.length bitcode + x86.Llvm_codegen.Emit.data_bytes in
      let x86_bytes = x86.Llvm_codegen.Emit.total_bytes in
      let sparc_bytes = sparc.Llvm_codegen.Emit.total_bytes in
      let a, b, c = !totals in
      totals := (a + llvm_bytes, b + x86_bytes, c + sparc_bytes);
      one_word_total :=
        !one_word_total + stats.Llvm_bitcode.Encoder.one_word_instrs;
      wide_total := !wide_total + stats.Llvm_bitcode.Encoder.wide_instrs;
      compress_ratios := Compress.ratio bitcode :: !compress_ratios;
      say "%-14s %9.1f %9.1f %9.1f %9.2f %13.0f%%" p.Genprog.p_name
        (float_of_int llvm_bytes /. 1024.)
        (float_of_int x86_bytes /. 1024.)
        (float_of_int sparc_bytes /. 1024.)
        (float_of_int llvm_bytes /. float_of_int x86_bytes)
        (100. *. (1. -. (float_of_int llvm_bytes /. float_of_int sparc_bytes))))
    Spec.spec2000;
  let a, b, c = !totals in
  say "%-14s %9.1f %9.1f %9.1f %9.2f %13.0f%%" "total"
    (float_of_int a /. 1024.)
    (float_of_int b /. 1024.)
    (float_of_int c /. 1024.)
    (float_of_int a /. float_of_int b)
    (100. *. (1. -. (float_of_int a /. float_of_int c)));
  say "";
  say "The paper: LLVM code is 'about the same size as native X86";
  say "executables' and roughly 25%% smaller than Sparc code.";
  say "";
  let ow = !one_word_total and w = !wide_total in
  say "Instruction encodings (section 4.1.3): %d one-word (%.1f%%), %d wide"
    ow
    (100. *. float_of_int ow /. float_of_int (max 1 (ow + w)))
    w;
  let ratios = !compress_ratios in
  let avg_ratio =
    List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)
  in
  say "LZ77 compression shrinks bitcode to %.0f%% of its size on average"
    (100. *. avg_ratio);
  say "(the paper: bzip2 reduces bytecode files to about 50%% of their";
  say " uncompressed size).";
  say ""

(* -- Execution-engine tiers (section 3.4) ------------------------------------ *)

(* Interpreter vs bytecode over the Table-1 workloads plus the
   exception-heavy programs.  Each program runs the same number of
   repetitions in both tiers, on one machine per tier (global state
   evolves identically, since the tiers are bit-for-bit comparable), so
   the ratio isolates dispatch cost.  Correctness is checked separately:
   one profiled run per tier (including tiered) must agree on status,
   output, instruction count and block profile. *)

type exec_obs = {
  o_status : string;
  o_output : string;
  o_instrs : int;
  o_profile : (int * int) list;
}

let observe (kind : Llvm_exec.Engine.kind) (m : Ir.modul) : exec_obs =
  let r, p = Llvm_exec.Engine.run_main ~fuel:1_000_000_000 ~profiling:true kind m in
  let status =
    match r.Llvm_exec.Interp.status with
    | `Returned v -> Fmt.str "returned %a" Llvm_exec.Interp.pp_rtval v
    | `Unwound -> "unwound"
    | `Exited c -> Fmt.str "exited %d" c
    | `Trapped msg -> "trapped: " ^ msg
  in
  { o_status = status;
    o_output = r.Llvm_exec.Interp.output;
    o_instrs = r.Llvm_exec.Interp.instructions;
    o_profile =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) p.Llvm_exec.Interp.counts []) }

type exec_row = {
  e_name : string;
  interp_s : float;
  bytecode_s : float;
  compile_s : float;
  compiled_instrs : int;
  e_speedup : float;
  e_instrs : int;
  reps : int;
  genprog : bool;
}

let bench_fuel = 1_000_000_000

let time_reps (kind : Llvm_exec.Engine.kind) (m : Ir.modul) (reps : int) :
    float * float * int =
  (* one machine for all reps: state evolves, but identically per tier *)
  let e = Llvm_exec.Engine.create kind m in
  let (_, compiled_instrs), compile_s =
    match kind with
    | Llvm_exec.Engine.Bytecode_tier ->
      time_it (fun () -> Llvm_exec.Engine.compile_all e)
    | _ -> ((0, 0), 0.0)
  in
  let main = Option.get (Ir.find_func m "main") in
  let _, total =
    time_it (fun () ->
        for _ = 1 to reps do
          ignore
            (Llvm_exec.Interp.run_function ~fuel:bench_fuel
               e.Llvm_exec.Engine.mach main [])
        done)
  in
  (total /. float_of_int reps, compile_s, compiled_instrs)

let exec_bench ?(quick = false) () =
  say "Execution engine: interpreter vs bytecode tier (section 3.4)";
  if quick then say "(--quick: reduced workload sizes, correctness-focused)";
  say "";
  let programs =
    List.map
      (fun p ->
        let p = if quick then Spec.quick p else p in
        (p.Genprog.p_name, true, Genprog.compile p))
      (Spec.spec2000 @ Spec.disciplined)
    @ List.map
        (fun (name, src) -> (name, false, Ehprog.compile name src))
        Ehprog.programs
  in
  let mismatches = ref 0 in
  say "%-18s %10s %10s %10s %9s %12s" "Benchmark" "interp(s)" "bytecode(s)"
    "compile(s)" "speedup" "instrs";
  let rows =
    List.map
      (fun (name, genprog, m) ->
        (* correctness first: all three tiers must agree on everything *)
        let reference = observe Llvm_exec.Engine.Interp_tier m in
        List.iter
          (fun kind ->
            let got = observe kind m in
            let complain what =
              Fmt.epr "MISMATCH %s [%s]: %s differs@." name
                (Llvm_exec.Engine.kind_name kind)
                what;
              incr mismatches
            in
            if got.o_status <> reference.o_status then complain "status";
            if got.o_output <> reference.o_output then complain "output";
            if got.o_instrs <> reference.o_instrs then
              complain "instruction count";
            if got.o_profile <> reference.o_profile then complain "profile")
          [ Llvm_exec.Engine.Bytecode_tier; Llvm_exec.Engine.Tiered ];
        (* timing: pick reps from one interpreted run, reuse for both *)
        let t1, _, _ = time_reps Llvm_exec.Engine.Interp_tier m 1 in
        let reps =
          if quick then 1
          else max 1 (min 40 (int_of_float (0.2 /. Float.max 1e-6 t1)))
        in
        let interp_s, _, _ = time_reps Llvm_exec.Engine.Interp_tier m reps in
        let bytecode_s, compile_s, compiled_instrs =
          time_reps Llvm_exec.Engine.Bytecode_tier m reps
        in
        let speedup = interp_s /. Float.max 1e-9 bytecode_s in
        say "%-18s %10.4f %10.4f %10.4f %8.2fx %12d" name interp_s bytecode_s
          compile_s speedup reference.o_instrs;
        { e_name = name; interp_s; bytecode_s; compile_s; compiled_instrs;
          e_speedup = speedup; e_instrs = reference.o_instrs; reps; genprog })
      programs
  in
  let geomean rows =
    match rows with
    | [] -> 1.0
    | _ ->
      exp
        (List.fold_left (fun a r -> a +. log r.e_speedup) 0.0 rows
        /. float_of_int (List.length rows))
  in
  let genprog_rows = List.filter (fun r -> r.genprog) rows in
  let gm_genprog = geomean genprog_rows in
  let gm_all = geomean rows in
  say "";
  say "geomean speedup: %.2fx on the genprog workloads, %.2fx overall"
    gm_genprog gm_all;
  let total_compile = List.fold_left (fun a r -> a +. r.compile_s) 0.0 rows in
  let total_instrs =
    List.fold_left (fun a r -> a + r.compiled_instrs) 0 rows
  in
  say "bytecode compilation: %d IR instructions in %.4fs total" total_instrs
    total_compile;
  if !mismatches > 0 then
    say "*** %d TIER MISMATCHES — the bytecode tier is wrong ***" !mismatches;
  (* machine-readable record of the run *)
  let oc = open_out "BENCH_exec.json" in
  let j fmt = Printf.fprintf oc fmt in
  j "{\n  \"benchmarks\": [\n";
  List.iteri
    (fun k r ->
      j
        "    {\"name\": %S, \"genprog\": %b, \"interp_s\": %.6f, \
         \"bytecode_s\": %.6f, \"compile_s\": %.6f, \"speedup\": %.3f, \
         \"instructions\": %d, \"reps\": %d}%s\n"
        r.e_name r.genprog r.interp_s r.bytecode_s r.compile_s r.e_speedup
        r.e_instrs r.reps
        (if k = List.length rows - 1 then "" else ","))
    rows;
  j "  ],\n";
  j "  \"geomean_speedup_genprog\": %.3f,\n" gm_genprog;
  j "  \"geomean_speedup_all\": %.3f,\n" gm_all;
  j "  \"compile_total_s\": %.6f,\n" total_compile;
  j "  \"quick\": %b,\n" quick;
  j "  \"tiers_agree\": %b\n" (!mismatches = 0);
  j "}\n";
  close_out oc;
  say "wrote BENCH_exec.json";
  say "";
  if !mismatches > 0 then exit 1

(* -- Lifelong pipeline (Figure 4) ------------------------------------------- *)

(* A program with a hot region the *static* inliner must refuse (the
   callee is large and has several callers) but the profile-guided
   idle-time reoptimizer can specialize once field data shows where the
   time goes. *)
let lifelong_app =
  {|
static int table_mix(int x, int rounds) {
  int acc = x;
  for (int r = 0; r < rounds; r++) {
    acc = (acc * 1103515245 + 12345) & 1073741823;
    acc = acc ^ (acc >> 7);
    acc = acc + (acc << 3);
    acc = acc & 16777215;
    acc = acc - (acc >> 2);
    acc = acc | (x & 255);
    acc = acc ^ (acc >> 11);
    acc = acc + x;
    acc = acc & 1073741823;
    acc = acc ^ (acc >> 5);
    acc = acc + (acc << 1);
    acc = acc & 536870911;
    acc = acc - (x >> 1);
    acc = acc ^ (acc >> 13);
    acc = acc + (x * 3);
    acc = acc & 1073741823;
    acc = acc | (acc >> 9);
    acc = acc ^ (x << 2);
    acc = acc & 268435455;
  }
  return acc;
}
static int cold_path(int x) { return table_mix(x, 1); }
int main() {
  int total = 0;
  for (int i = 0; i < 2000; i++) total ^= table_mix(i & 127, 2);
  if ((total & 4095) == 777) total ^= cold_path(total);  // cold caller
  return total & 63;
}
|}

let lifelong () =
  say "Lifelong compilation pipeline (Figure 4 / sections 3.5-3.6)";
  say "";
  let unit_ = Llvm_minic.Codegen.compile_string ~name:"hotapp" lifelong_app in
  let exe = Llvm_linker.Lifelong.build [ unit_ ] in
  say "built %s: bitcode %d bytes, native X86 %d bytes, Sparc %d bytes"
    "hotapp"
    (String.length exe.Llvm_linker.Lifelong.bitcode)
    exe.Llvm_linker.Lifelong.native_x86_bytes
    exe.Llvm_linker.Lifelong.native_sparc_bytes;
  let report = Llvm_linker.Lifelong.run_in_the_field ~fuel:200_000_000 exe in
  let before = report.Llvm_linker.Lifelong.result.Llvm_exec.Interp.instructions in
  say "field run 1: %d instructions executed" before;
  (match report.Llvm_linker.Lifelong.promoted with
  | [] -> say "tiered engine: nothing crossed the hot threshold"
  | ps ->
    say "tiered engine promoted to bytecode: %s"
      (String.concat ", "
         (List.map (fun (f, n) -> Fmt.str "%s (at %d entries)" f n) ps)));
  let hot = Llvm_linker.Lifelong.hot_functions exe report in
  say "hottest functions:";
  List.iteri
    (fun k (name, count) -> if k < 5 then say "  %-24s %8d entries" name count)
    hot;
  let reopt = Llvm_linker.Lifelong.reoptimize_with_profile exe report in
  say "idle-time reoptimizer: inlined %d hot call sites (%d -> %d instrs)"
    reopt.Llvm_linker.Lifelong.inlined_hot_calls
    reopt.Llvm_linker.Lifelong.before_instrs
    reopt.Llvm_linker.Lifelong.after_instrs;
  let report2 = Llvm_linker.Lifelong.run_in_the_field ~fuel:200_000_000 exe in
  let after = report2.Llvm_linker.Lifelong.result.Llvm_exec.Interp.instructions in
  say "field run 2: %d instructions executed (%.1f%% fewer)" after
    (100. *. (1. -. (float_of_int after /. float_of_int before)));
  say ""

(* -- SAFECode-style bounds checking (section 4.1.2) --------------------------- *)

let safecode () =
  say "SAFECode-style bounds checking (section 4.1.2)";
  say "(instrument every variable array index; eliminate the checks that";
  say " masking, constants or guarded induction variables prove safe)";
  say "";
  say "%-14s %9s %11s %9s" "Benchmark" "inserted" "eliminated" "removed%";
  let tot_i = ref 0 and tot_e = ref 0 in
  List.iter
    (fun p ->
      let m = build_benchmark p in
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Gvn.pass m);
      let inserted = Llvm_transforms.Boundscheck.insert m in
      let eliminated = Llvm_transforms.Boundscheck.eliminate m in
      tot_i := !tot_i + inserted;
      tot_e := !tot_e + eliminated;
      say "%-14s %9d %11d %8.0f%%" p.Genprog.p_name inserted eliminated
        (if inserted = 0 then 100.
         else 100. *. float_of_int eliminated /. float_of_int inserted))
    Spec.spec2000;
  say "%-14s %9d %11d %8.0f%%" "total" !tot_i !tot_e
    (if !tot_i = 0 then 100.
     else 100. *. float_of_int !tot_e /. float_of_int !tot_i);
  say "";
  say "(the paper: SAFECode 'uses interprocedural analysis to eliminate";
  say " runtime bounds checks in many cases')";
  say ""

(* -- Value-range analysis: check elimination and fast ops ---------------------- *)

(* End-to-end measurement of the interprocedural value-range analysis:
   instrument every variable array index on the Table-1 workloads, let
   the range-aware eliminator prove checks away, and run the guarded and
   the eliminated program in all three engine tiers.  Every run must be
   bit-for-bit identical across tiers, and elimination must not change
   program status, output or block profile — only the executed
   instruction count.  Also reports how many guarded bytecode ops the
   range analysis let [Bytecode.compile] lower to unguarded fast
   variants. *)

type ranges_row = {
  g_name : string;
  inserted : int;
  eliminated : int;
  guarded_s : float;
  elim_s : float;
  guarded_instrs : int;
  elim_instrs : int;
  g_fast_ops : int;
}

let ranges_bench ?(quick = false) () =
  say "Value-range analysis: bounds-check elimination and fast ops";
  if quick then say "(--quick: reduced workload sizes, correctness-focused)";
  say "";
  say "%-14s %8s %10s %8s %10s %10s %8s %8s" "Benchmark" "inserted"
    "eliminated" "elim%" "guarded(s)" "elim(s)" "delta%" "fastops";
  let mismatches = ref 0 in
  let all_kinds =
    [ Llvm_exec.Engine.Interp_tier; Llvm_exec.Engine.Bytecode_tier;
      Llvm_exec.Engine.Tiered ]
  in
  let rows =
    List.map
      (fun p ->
        let p = if quick then Spec.quick p else p in
        let m = build_benchmark p in
        ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
        ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Gvn.pass m);
        let inserted = Llvm_transforms.Boundscheck.insert m in
        let complain what kind =
          Fmt.epr "MISMATCH %s [%s]: %s differs@." p.Genprog.p_name
            (Llvm_exec.Engine.kind_name kind)
            what;
          incr mismatches
        in
        (* guarded program: all three tiers agree on everything *)
        let reference = observe Llvm_exec.Engine.Interp_tier m in
        List.iter
          (fun kind ->
            let got = observe kind m in
            if got.o_status <> reference.o_status then complain "status" kind;
            if got.o_output <> reference.o_output then complain "output" kind;
            if got.o_instrs <> reference.o_instrs then
              complain "instruction count" kind;
            if got.o_profile <> reference.o_profile then complain "profile" kind)
          (List.tl all_kinds);
        let t1, _, _ = time_reps Llvm_exec.Engine.Interp_tier m 1 in
        let reps =
          if quick then 1
          else max 1 (min 40 (int_of_float (0.2 /. Float.max 1e-6 t1)))
        in
        let guarded_s, _, _ =
          time_reps Llvm_exec.Engine.Bytecode_tier m reps
        in
        (* eliminate, then recheck: tiers still agree, and the program
           behaves exactly as before minus the check calls (same status,
           output and block profile; fewer executed instructions) *)
        let eliminated = Llvm_transforms.Boundscheck.eliminate m in
        let after = observe Llvm_exec.Engine.Interp_tier m in
        if after.o_status <> reference.o_status then
          complain "status after elimination" Llvm_exec.Engine.Interp_tier;
        if after.o_output <> reference.o_output then
          complain "output after elimination" Llvm_exec.Engine.Interp_tier;
        if after.o_profile <> reference.o_profile then
          complain "profile after elimination" Llvm_exec.Engine.Interp_tier;
        List.iter
          (fun kind ->
            let got = observe kind m in
            if got.o_status <> after.o_status then complain "status" kind;
            if got.o_output <> after.o_output then complain "output" kind;
            if got.o_instrs <> after.o_instrs then
              complain "instruction count" kind;
            if got.o_profile <> after.o_profile then complain "profile" kind)
          (List.tl all_kinds);
        let elim_s, _, _ = time_reps Llvm_exec.Engine.Bytecode_tier m reps in
        let e = Llvm_exec.Engine.create Llvm_exec.Engine.Bytecode_tier m in
        ignore (Llvm_exec.Engine.compile_all e);
        let g_fast_ops = Llvm_exec.Engine.fast_ops e in
        let delta = 100. *. (1. -. (elim_s /. Float.max 1e-9 guarded_s)) in
        say "%-14s %8d %10d %7.0f%% %10.4f %10.4f %7.1f%% %8d"
          p.Genprog.p_name inserted eliminated
          (if inserted = 0 then 100.
           else 100. *. float_of_int eliminated /. float_of_int inserted)
          guarded_s elim_s delta g_fast_ops;
        { g_name = p.Genprog.p_name; inserted; eliminated; guarded_s; elim_s;
          guarded_instrs = reference.o_instrs; elim_instrs = after.o_instrs;
          g_fast_ops })
      Spec.spec2000
  in
  let tot_i = List.fold_left (fun a r -> a + r.inserted) 0 rows in
  let tot_e = List.fold_left (fun a r -> a + r.eliminated) 0 rows in
  let tot_fast = List.fold_left (fun a r -> a + r.g_fast_ops) 0 rows in
  let elim_pct =
    if tot_i = 0 then 100. else 100. *. float_of_int tot_e /. float_of_int tot_i
  in
  say "%-14s %8d %10d %7.0f%% %31s %8d" "total" tot_i tot_e elim_pct ""
    tot_fast;
  say "";
  say "%.0f%% of inserted bounds checks eliminated statically (target: 20%%);"
    elim_pct;
  say "%d bytecode ops compiled to unguarded fast variants" tot_fast;
  if !mismatches > 0 then
    say "*** %d MISMATCHES — range-driven elimination is unsound ***"
      !mismatches;
  let oc = open_out "BENCH_ranges.json" in
  let j fmt = Printf.fprintf oc fmt in
  j "{\n  \"benchmarks\": [\n";
  List.iteri
    (fun k r ->
      j
        "    {\"name\": %S, \"inserted\": %d, \"eliminated\": %d, \
         \"guarded_s\": %.6f, \"eliminated_s\": %.6f, \"guarded_instrs\": %d, \
         \"eliminated_instrs\": %d, \"fast_ops\": %d}%s\n"
        r.g_name r.inserted r.eliminated r.guarded_s r.elim_s r.guarded_instrs
        r.elim_instrs r.g_fast_ops
        (if k = List.length rows - 1 then "" else ","))
    rows;
  j "  ],\n";
  j "  \"inserted_total\": %d,\n" tot_i;
  j "  \"eliminated_total\": %d,\n" tot_e;
  j "  \"eliminated_percent\": %.1f,\n" elim_pct;
  j "  \"fast_ops_total\": %d,\n" tot_fast;
  j "  \"quick\": %b,\n" quick;
  j "  \"tiers_agree\": %b\n" (!mismatches = 0);
  j "}\n";
  close_out oc;
  say "wrote BENCH_ranges.json";
  say "";
  if !mismatches > 0 || tot_e = 0 then exit 1

(* -- Automatic pool allocation (sections 3.3 / 4.2.1) ------------------------- *)

let poolalloc () =
  say "Automatic Pool Allocation (sections 3.3 / 4.2.1)";
  say "(heap allocations whose DSA node cannot escape their function are";
  say " segregated into per-data-structure pools, bulk-freed on return)";
  say "";
  say "%-14s %8s %9s %9s %9s" "Benchmark" "mallocs" "pooled" "pools" "pooled%";
  let tot_m = ref 0 and tot_p = ref 0 and tot_pools = ref 0 in
  List.iter
    (fun p ->
      let m = build_benchmark p in
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
      let mallocs =
        List.fold_left
          (fun n f ->
            Ir.fold_instrs
              (fun n i -> if i.Ir.iop = Ir.Malloc then n + 1 else n)
              n f)
          0 m.Ir.mfuncs
      in
      let s = Llvm_transforms.Poolalloc.run m in
      (match Verify.verify_module m with
      | [] -> ()
      | errs ->
        Fmt.epr "%s: %a@." p.Genprog.p_name Fmt.(list Verify.pp_error) errs);
      tot_m := !tot_m + mallocs;
      tot_p := !tot_p + s.Llvm_transforms.Poolalloc.mallocs_pooled;
      tot_pools := !tot_pools + s.Llvm_transforms.Poolalloc.pools_created;
      say "%-14s %8d %9d %9d %8.0f%%" p.Genprog.p_name mallocs
        s.Llvm_transforms.Poolalloc.mallocs_pooled
        s.Llvm_transforms.Poolalloc.pools_created
        (if mallocs = 0 then 0.
         else
           100.
           *. float_of_int s.Llvm_transforms.Poolalloc.mallocs_pooled
           /. float_of_int mallocs))
    Spec.spec2000;
  say "%-14s %8d %9d %9d %8.0f%%" "total" !tot_m !tot_p !tot_pools
    (if !tot_m = 0 then 0.
     else 100. *. float_of_int !tot_p /. float_of_int !tot_m);
  say "";
  say "(the paper: DSA and Automatic Pool Allocation 'analyze and transform";
  say " programs in terms of their logical data structures')";
  say ""

(* -- Lint precision over the Table-1 workloads -------------------------------- *)

(* Tracked like a benchmark: per-checker finding counts over the same 15
   linked programs Table 1 analyzes, after the same stack promotion.
   Movement in a column is an analyzer precision (or program generator)
   change worth explaining. *)
let lint () =
  say "llvm-lint: static safety findings per checker";
  say "(over the linked Table-1 programs after SROA + mem2reg)";
  say "";
  let codes = List.map fst Llvm_analysis.Lint.all_codes in
  say "%-14s %s %6s" "Benchmark"
    (String.concat " " (List.map (Printf.sprintf "%5s") codes))
    "total";
  let totals = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let m = build_benchmark p in
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Sroa.pass m);
      ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
      let diags = Llvm_analysis.Lint.run m in
      let counts = Llvm_analysis.Lint.count_by_code diags in
      List.iter
        (fun (code, n) ->
          Hashtbl.replace totals code
            (n + Option.value ~default:0 (Hashtbl.find_opt totals code)))
        counts;
      say "%-14s %s %6d" p.Genprog.p_name
        (String.concat " "
           (List.map (fun (_, n) -> Printf.sprintf "%5d" n) counts))
        (List.length diags))
    Spec.spec2000;
  say "%-14s %s %6d" "total"
    (String.concat " "
       (List.map
          (fun code ->
            Printf.sprintf "%5d"
              (Option.value ~default:0 (Hashtbl.find_opt totals code)))
          codes))
    (Hashtbl.fold (fun _ n acc -> n + acc) totals 0);
  say "";
  say "(codes: %s)"
    (String.concat ", "
       (List.map
          (fun (c, name) -> c ^ " " ^ name)
          Llvm_analysis.Lint.all_codes));
  say ""

(* -- Microbenchmarks --------------------------------------------------------- *)

let micro () =
  let open Bechamel in
  let p = Option.get (Spec.find "186.crafty") in
  let m = build_benchmark p in
  ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass m);
  let text = Printer.module_to_string m in
  let image, _ = Llvm_bitcode.Encoder.encode m in
  let tests =
    Test.make_grouped ~name:"llvm"
      [ Test.make ~name:"print-module"
          (Staged.stage (fun () -> ignore (Printer.module_to_string m)));
        Test.make ~name:"parse-module"
          (Staged.stage (fun () -> ignore (Llvm_asm.Parser.parse_module text)));
        Test.make ~name:"bitcode-encode"
          (Staged.stage (fun () -> ignore (Llvm_bitcode.Encoder.encode m)));
        Test.make ~name:"bitcode-decode"
          (Staged.stage (fun () -> ignore (Llvm_bitcode.Decoder.decode image)));
        Test.make ~name:"dominators-all-functions"
          (Staged.stage (fun () ->
               List.iter
                 (fun f ->
                   if not (Ir.is_declaration f) then
                     ignore (Llvm_analysis.Dominance.compute f))
                 m.Ir.mfuncs));
        Test.make ~name:"callgraph"
          (Staged.stage (fun () -> ignore (Llvm_analysis.Callgraph.compute m)));
        Test.make ~name:"dsa-points-to"
          (Staged.stage (fun () -> ignore (Llvm_analysis.Dsa.run m)));
        Test.make ~name:"gvn-on-fresh-module"
          (Staged.stage (fun () ->
               let fresh = Llvm_bitcode.Decoder.decode image in
               ignore (Llvm_transforms.Pass.run_pass Llvm_transforms.Gvn.pass fresh)));
        Test.make ~name:"mem2reg-on-fresh-module"
          (Staged.stage (fun () ->
               let fresh = Llvm_bitcode.Decoder.decode image in
               ignore
                 (Llvm_transforms.Pass.run_pass Llvm_transforms.Mem2reg.pass fresh)))
      ]
  in
  let benchmark () =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
    in
    Benchmark.all cfg instances tests
  in
  let analyze raw =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  say "Microbenchmarks (bechamel, ns/run via OLS on the monotonic clock):";
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> say "  %-32s %14.1f ns/run" name est
      | Some _ | None -> say "  %-32s %14s" name "n/a")
    results;
  say ""

(* -- Compilation-as-a-service fleet replay ----------------------------------- *)

(* Replays a synthetic fleet against the in-process serving layer
   (lib/serve): thousands of sessions compile, lint, run and link
   modules drawn zipf-distributed from a universe built over the
   genprog/eh workloads — the "millions of users compiling overlapping
   code" traffic shape of the lifelong-compilation story.  Reports
   throughput, p50/p99 latency and cache hit rate (BENCH_serve.json),
   differentially checks that served bytes are identical to direct
   pipeline runs, and self-tests the validation gate with the fuzzer's
   deliberately-wrong inject-sub-swap pass. *)

let percentile (sorted : float array) (q : float) : float =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
    let k = int_of_float (q *. float_of_int (n - 1)) in
    sorted.(min (n - 1) k)

(* The synthetic fleet shared by serve_bench and chaos_bench: a
   universe of bitcode payloads (quick-profile Table-1 variants plus
   the exception-heavy programs), a fixed random rank permutation, a
   zipf(s=1.1) popularity law over it, and shared-library sets for
   link batches. *)
type fleet = {
  fl_universe : (string * string * bool) array; (* name, payload, is_eh *)
  fl_perm : int array;
  fl_zipf_cum : float array;
  fl_zipf_total : float;
  fl_libsets : string list;
  fl_genprog : int;
  fl_eh : int;
}

let build_fleet ~(variants : int) (rng : Rng.t) : fleet =
  (* universe: quick-profile variants of the Table-1 workloads plus the
     exception-heavy programs, pre-serialized to bitcode payloads *)
  let genprog_universe =
    List.concat_map
      (fun p ->
        List.init variants (fun v ->
            let q = Spec.quick p in
            let q =
              { q with
                Genprog.p_name = Printf.sprintf "%s.v%d" p.Genprog.p_name v;
                Genprog.seed = q.Genprog.seed + (101 * v) }
            in
            let m = Genprog.compile q in
            (q.Genprog.p_name, fst (Llvm_bitcode.Encoder.encode m), false)))
      Spec.spec2000
  in
  let eh_universe =
    List.map
      (fun (name, src) ->
        (name, fst (Llvm_bitcode.Encoder.encode (Ehprog.compile name src)), true))
      Ehprog.programs
  in
  let universe = Array.of_list (genprog_universe @ eh_universe) in
  let nuniv = Array.length universe in
  (* rank -> universe index: a fixed random permutation so popularity is
     not correlated with generation order *)
  let perm = Array.init nuniv (fun i -> i) in
  for i = nuniv - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  (* zipf(s=1.1) over ranks *)
  let zipf_cum =
    let w = Array.init nuniv (fun k -> 1.0 /. (float_of_int (k + 1) ** 1.1)) in
    let acc = ref 0.0 in
    Array.map
      (fun x ->
        acc := !acc +. x;
        !acc)
      w
  in
  (* shared libraries for link batches: MiniC modules with no main and
     service-unique symbol names *)
  let libsets =
    List.init 3 (fun i ->
        let src =
          Printf.sprintf
            {|
int svclib_mix_%d(int x) {
  int acc = x + %d;
  for (int k = 0; k < 64; k++) { acc = (acc * 33 + k) & 65535; }
  return acc;
}
int svclib_sum_%d(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) s = s + svclib_mix_%d(i);
  return s;
}
|}
            i (17 * i) i i
        in
        let m =
          Llvm_minic.Codegen.compile_string
            ~name:(Printf.sprintf "svclib%d" i)
            src
        in
        fst (Llvm_bitcode.Encoder.encode m))
  in
  { fl_universe = universe; fl_perm = perm; fl_zipf_cum = zipf_cum;
    fl_zipf_total = zipf_cum.(nuniv - 1); fl_libsets = libsets;
    fl_genprog = List.length genprog_universe;
    fl_eh = List.length eh_universe }

let sample_fleet (fl : fleet) (rng : Rng.t) : string * string * bool =
  let nuniv = Array.length fl.fl_universe in
  let u =
    float_of_int (Rng.int rng 1_000_000) /. 1_000_000.0 *. fl.fl_zipf_total
  in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fl.fl_zipf_cum.(mid) < u then search (mid + 1) hi else search lo mid
  in
  fl.fl_universe.(fl.fl_perm.(search 0 (nuniv - 1)))

let serve_bench ?(quick = false) () =
  say "Compilation-as-a-service: synthetic fleet replay (lib/serve)";
  if quick then say "(--quick: reduced fleet)";
  say "";
  let rng = Rng.create 0x5e12e in
  let fleet = build_fleet ~variants:(if quick then 2 else 4) rng in
  let universe = fleet.fl_universe in
  let nuniv = Array.length universe in
  let perm = fleet.fl_perm in
  let libsets = fleet.fl_libsets in
  let sample_module () = sample_fleet fleet rng in
  let server = Llvm_serve.Server.create () in
  let sessions = if quick then 600 else 3000 in
  let latencies = ref [] in
  let failures = ref 0 in
  let record t0 n =
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int (max 1 n) in
    for _ = 1 to n do
      latencies := dt :: !latencies
    done
  in
  let check_resp (r : Llvm_serve.Protocol.response) =
    match r with
    | Llvm_serve.Protocol.Served _ -> ()
    | Llvm_serve.Protocol.Rejected why ->
      Fmt.epr "unexpected validation reject: %s@." why;
      incr failures
    | Llvm_serve.Protocol.Failed e ->
      Fmt.epr "request failed: %s@." e;
      incr failures
    | Llvm_serve.Protocol.Timed_out why ->
      Fmt.epr "request timed out: %s@." why;
      incr failures
    | Llvm_serve.Protocol.Busy _ ->
      Fmt.epr "request shed by in-process server (unexpected)@.";
      incr failures
  in
  (* differential gate: served bytes must match a direct pipeline run *)
  let diff_checked = ref 0 and diff_mismatches = ref 0 in
  let differential payload level (resp : Llvm_serve.Protocol.response) =
    match resp with
    | Llvm_serve.Protocol.Served { payload = got; _ } ->
      incr diff_checked;
      let m =
        match Llvm_serve.Loader.of_bytes ~name:"diff" payload with
        | Ok m -> m
        | Error e -> Fmt.failwith "diff load: %s" e
      in
      Llvm_transforms.Pipelines.optimize_module ~level m;
      let direct = fst (Llvm_bitcode.Encoder.encode m) in
      if not (String.equal direct got) then begin
        incr diff_mismatches;
        Fmt.epr "DIFFERENTIAL MISMATCH: served bytes differ from direct -O%d run@."
          level
      end
    | _ -> ()
  in
  let handle body =
    let t0 = Unix.gettimeofday () in
    let resp = Llvm_serve.Server.handle server (Llvm_serve.Protocol.req body) in
    record t0 1;
    check_resp resp;
    resp
  in
  let compile_count = ref 0 in
  let t_start = Unix.gettimeofday () in
  for session = 1 to sessions do
    let nreq = 2 + Rng.int rng 4 in
    for _ = 1 to nreq do
      let name, payload, is_eh = sample_module () in
      ignore name;
      let dice = Rng.int rng 100 in
      if dice < 70 then begin
        let level = if Rng.chance rng 20 then 3 else 2 in
        incr compile_count;
        let resp =
          handle
            (Llvm_serve.Protocol.Compile
               { c_payload = payload;
                 c_pipeline = Llvm_serve.Protocol.Level level;
                 c_validate = false })
        in
        if !compile_count mod 53 = 0 then differential payload level resp
      end
      else if dice < 85 then
        ignore (handle (Llvm_serve.Protocol.Lint payload))
      else if is_eh then
        ignore
          (handle
             (Llvm_serve.Protocol.Run
                { r_payload = payload;
                  r_pipeline = Llvm_serve.Protocol.Level 2;
                  r_fuel = 10_000_000;
                  r_engine = Llvm_exec.Engine.Tiered }))
      else begin
        incr compile_count;
        ignore
          (handle
             (Llvm_serve.Protocol.Compile
                { c_payload = payload;
                  c_pipeline = Llvm_serve.Protocol.Level 2;
                  c_validate = false }))
      end
    done;
    (* every 8th session: a queued batch of link requests sharing one
       library set — the daemon path that runs IPO once per group *)
    if session mod 8 = 0 then begin
      let libs = [ Rng.pick rng libsets ] in
      let members = 4 in
      let reqs =
        List.init members (fun _ ->
            let _, payload, _ = sample_module () in
            Llvm_serve.Protocol.req
              (Llvm_serve.Protocol.Link
                 { l_apps = [ payload ]; l_libs = libs; l_validate = false }))
      in
      let t0 = Unix.gettimeofday () in
      let resps = Llvm_serve.Server.handle_batch server reqs in
      record t0 members;
      List.iter check_resp resps
    end
  done;
  let elapsed = Unix.gettimeofday () -. t_start in
  (* validation phase: a few witnessed requests must all pass, and the
     fuzzer's deliberately wrong pass must be rejected on its request *)
  let validated = ref 0 and validation_ok = ref true in
  List.iter
    (fun (_, payload, _) ->
      incr validated;
      match
        Llvm_serve.Server.handle server
          (Llvm_serve.Protocol.req
             (Llvm_serve.Protocol.Compile
                { c_payload = payload;
                  c_pipeline = Llvm_serve.Protocol.Level 3;
                  c_validate = true }))
      with
      | Llvm_serve.Protocol.Served _ -> ()
      | _ -> validation_ok := false)
    (List.filteri (fun i _ -> i < 5) (Array.to_list universe));
  let injected_rejected =
    (* make sure the deliberately-wrong pass is registered *)
    let _ = Llvm_fuzz.Oracle.injected_bug_pass in
    let _, payload, _ = universe.(perm.(0)) in
    match
      Llvm_serve.Server.handle server
        (Llvm_serve.Protocol.req
           (Llvm_serve.Protocol.Compile
              { c_payload = payload;
                c_pipeline = Llvm_serve.Protocol.Passes [ "inject-sub-swap" ];
                c_validate = true }))
    with
    | Llvm_serve.Protocol.Rejected _ -> true
    | _ -> false
  in
  let lats = Array.of_list !latencies in
  Array.sort compare lats;
  let requests = Llvm_serve.Server.requests server in
  let throughput = float_of_int requests /. Float.max 1e-9 elapsed in
  let p50 = percentile lats 0.50 *. 1000.0 in
  let p99 = percentile lats 0.99 *. 1000.0 in
  let hit_rate = Llvm_serve.Server.hit_rate server in
  let cache = Llvm_serve.Server.cache server in
  say "universe: %d modules (%d genprog variants + %d eh), %d sessions" nuniv
    fleet.fl_genprog fleet.fl_eh sessions;
  say "%d requests in %.2fs: %.0f req/s, p50 %.3fms, p99 %.3fms" requests
    elapsed throughput p50 p99;
  say "cache: %.1f%% hit rate (%d hits, %d misses), %d entries, %d evictions"
    (100.0 *. hit_rate)
    (Llvm_serve.Cache.hits cache)
    (Llvm_serve.Cache.misses cache)
    (Llvm_serve.Cache.entries cache)
    (Llvm_serve.Cache.evictions cache);
  say "link batching: %d groups shared one IPO pipeline run"
    (Llvm_serve.Server.batched_link_groups server);
  say "differential: %d served results checked against direct runs, %d mismatches"
    !diff_checked !diff_mismatches;
  say "validation: %d witnessed requests ok=%b; inject-sub-swap rejected=%b"
    !validated !validation_ok injected_rejected;
  let clean =
    !failures = 0 && !diff_mismatches = 0 && !diff_checked > 0
    && hit_rate >= 0.5 && !validation_ok && injected_rejected
  in
  let oc = open_out "BENCH_serve.json" in
  let j fmt = Printf.fprintf oc fmt in
  j "{\n";
  j "  \"sessions\": %d,\n" sessions;
  j "  \"universe\": %d,\n" nuniv;
  j "  \"requests\": %d,\n" requests;
  j "  \"elapsed_s\": %.3f,\n" elapsed;
  j "  \"throughput_rps\": %.1f,\n" throughput;
  j "  \"p50_ms\": %.4f,\n" p50;
  j "  \"p99_ms\": %.4f,\n" p99;
  j "  \"hit_rate\": %.4f,\n" hit_rate;
  j "  \"hits\": %d,\n" (Llvm_serve.Cache.hits cache);
  j "  \"misses\": %d,\n" (Llvm_serve.Cache.misses cache);
  j "  \"evictions\": %d,\n" (Llvm_serve.Cache.evictions cache);
  j "  \"entries\": %d,\n" (Llvm_serve.Cache.entries cache);
  j "  \"batched_link_groups\": %d,\n"
    (Llvm_serve.Server.batched_link_groups server);
  j "  \"differential_checked\": %d,\n" !diff_checked;
  j "  \"differential_mismatches\": %d,\n" !diff_mismatches;
  j "  \"validated_requests\": %d,\n" !validated;
  j "  \"injected_miscompile_rejected\": %b,\n" injected_rejected;
  j "  \"failures\": %d,\n" !failures;
  j "  \"quick\": %b,\n" quick;
  j "  \"clean\": %b\n" clean;
  j "}\n";
  close_out oc;
  say "wrote BENCH_serve.json";
  say "";
  if not clean then exit 1

(* -- Chaos: the fleet replay under injected faults ---------------------------- *)

(* Replays the zipf fleet against a REAL forked llvmd (workers, request
   deadlines, admission control, circuit breaker) while injecting
   faults on both sides of the wire: server-side worker crashes, slow
   pipelines and cache corruption (seeded Faults plan installed in the
   daemon), and client-side torn frames, mid-frame stalls and garbage
   headers.  The gate: non-faulted traffic stays >= 99% available,
   served bytes never diverge from direct pipeline runs, every
   observed worker crash is followed by a successful fresh compile
   (automatic recovery), the daemon answers every liveness probe, and
   SIGTERM shuts it down gracefully (exit 0, socket unlinked).
   Results land in BENCH_chaos.json. *)

let chaos_bench ?(quick = false) () =
  let module P = Llvm_serve.Protocol in
  let module D = Llvm_serve.Daemon in
  let module F = Llvm_serve.Faults in
  say "Chaos: fleet replay under injected faults (lib/serve + llvmd)";
  if quick then say "(--quick: reduced fleet)";
  say "";
  (* stall/torn writes may hit a daemon that already gave up on us *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let rng = Rng.create 0xc4a05 in
  let fleet = build_fleet ~variants:(if quick then 2 else 3) rng in
  let sample_module () = sample_fleet fleet rng in
  (* never-cached probe payloads: recovery is only proven by a compile
     that must reach a (respawned) worker *)
  let spares =
    Array.init 64 (fun k ->
        let src =
          Printf.sprintf
            "int chaosprobe_%d(int x) { int s = %d; for (int i = 0; i < x; \
             i++) s = (s * 31 + i) & 8191; return s; }"
            k (k + 3)
        in
        let m =
          Llvm_minic.Codegen.compile_string
            ~name:(Printf.sprintf "chaosprobe%d" k)
            src
        in
        fst (Llvm_bitcode.Encoder.encode m))
  in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "llvmd-chaos-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let deadline_ms = 250 in
  let config =
    { D.default_config with
      D.workers = 2; deadline_ms; frame_deadline_ms = 150;
      idle_timeout_ms = 10_000; max_batch = 16; max_queue = 8;
      retry_after_ms = 25; breaker_cooldown_ms = 200 }
  in
  let faults =
    F.plan ~seed:0xfa017 ~crash_rate:0.04 ~crash_point:F.Mid_pipeline
      ~slow_rate:0.02 ~slow_ms:400 ~corrupt_rate:0.02 ()
  in
  let daemon_pid =
    match Unix.fork () with
    | 0 ->
      (try D.serve ~config ~faults ~socket Llvm_serve.Server.default_config
       with _ -> Unix._exit 1);
      Unix._exit 0
    | pid -> pid
  in
  (* wait for the daemon to come up *)
  let rec wait_ready tries =
    if tries = 0 then failwith "chaos: daemon did not come up";
    match D.connect ~socket with
    | fd -> D.close fd
    | exception Unix.Unix_error _ ->
      Unix.sleepf 0.05;
      wait_ready (tries - 1)
  in
  wait_ready 200;
  let total = if quick then 300 else 1500 in
  let served = ref 0 and timeouts = ref 0 and crashes = ref 0 in
  let busy_final = ref 0 and failed_other = ref 0 and transport = ref 0 in
  let client_faults = ref 0 in
  let recovered = ref 0 and recovery_ms = ref [] in
  let pings = ref 0 and ping_failures = ref 0 in
  let diff_checked = ref 0 and diff_mismatches = ref 0 in
  let latencies = ref [] in
  let compile_count = ref 0 in
  let retry i req =
    D.request_with_retry ~attempts:5 ~base_delay_ms:60 ~seed:i ~socket req
  in
  let differential payload level got =
    incr diff_checked;
    match Llvm_serve.Loader.of_bytes ~name:"diff" payload with
    | Error e -> Fmt.failwith "chaos diff load: %s" e
    | Ok m ->
      Llvm_transforms.Pipelines.optimize_module ~level m;
      if not (String.equal (fst (Llvm_bitcode.Encoder.encode m)) got) then begin
        incr diff_mismatches;
        Fmt.epr
          "CHAOS MISMATCH: served bytes differ from direct -O%d run@." level
      end
  in
  let probe_count = ref 0 in
  let recovery_probe i =
    incr probe_count;
    let payload = spares.(!probe_count mod Array.length spares) in
    let t0 = Unix.gettimeofday () in
    match
      retry i
        (P.req ~deadline_ms:2000
           (P.Compile
              { c_payload = payload; c_pipeline = P.Level 2;
                c_validate = false }))
    with
    | Ok (P.Served _) ->
      incr recovered;
      recovery_ms := ((Unix.gettimeofday () -. t0) *. 1000.0) :: !recovery_ms
    | _ -> ()
  in
  let t_start = Unix.gettimeofday () in
  for i = 1 to total do
    if i mod 40 = 13 then begin
      (* hostile client: torn frame, mid-frame stall, or garbage header *)
      incr client_faults;
      let body =
        P.encode_request
          (P.req
             (P.Lint (let _, payload, _ = sample_module () in payload)))
      in
      (match D.connect ~socket with
      | exception Unix.Unix_error _ -> ()
      | fd ->
        (match i mod 3 with
        | 0 -> F.send_faulty F.Torn_frame fd body
        | 1 -> F.send_faulty ~stall_ms:250 F.Stalled_frame fd body
        | _ -> F.send_faulty F.Garbage_header fd body);
        (* the daemon may answer (Timed_out / Failed) before dropping us *)
        ignore (D.receive fd);
        D.close fd)
    end
    else begin
      let name, payload, is_eh = sample_module () in
      ignore name;
      let dice = Rng.int rng 100 in
      let body =
        if dice < 70 then begin
          incr compile_count;
          P.Compile
            { c_payload = payload;
              c_pipeline = P.Level (if Rng.chance rng 20 then 3 else 2);
              c_validate = false }
        end
        else if dice < 85 then P.Lint payload
        else if is_eh then
          P.Run
            { r_payload = payload; r_pipeline = P.Level 2;
              r_fuel = 10_000_000; r_engine = Llvm_exec.Engine.Tiered }
        else begin
          incr compile_count;
          P.Compile
            { c_payload = payload; c_pipeline = P.Level 2;
              c_validate = false }
        end
      in
      let t0 = Unix.gettimeofday () in
      let resp = retry i (P.req body) in
      latencies := (Unix.gettimeofday () -. t0) :: !latencies;
      (match resp with
      | Ok (P.Served { payload = got; _ }) -> (
        incr served;
        match body with
        | P.Compile { c_pipeline = P.Level level; _ }
          when !compile_count mod 20 = 0 ->
          differential payload level got
        | _ -> ())
      | Ok (P.Timed_out _) -> incr timeouts
      | Ok (P.Failed e) ->
        if
          String.length e >= 14 && String.sub e 0 14 = "worker crashed"
        then begin
          incr crashes;
          recovery_probe i
        end
        else begin
          incr failed_other;
          Fmt.epr "chaos: unexpected failure: %s@." e
        end
      | Ok (P.Busy _) -> incr busy_final
      | Ok (P.Rejected why) ->
        incr failed_other;
        Fmt.epr "chaos: unexpected reject: %s@." why
      | Error e ->
        incr transport;
        Fmt.epr "chaos: transport error: %s@." (D.error_to_string e))
    end;
    (* liveness probe: the daemon must answer even while faults rain *)
    if i mod 25 = 0 then begin
      incr pings;
      match retry i (P.req P.Ping) with
      | Ok (P.Served { payload = "pong"; _ }) -> ()
      | _ -> incr ping_failures
    end;
    (* pipelined link pair sharing a library set: exercises batch drain
       + worker affinity under faults *)
    if i mod 75 = 0 then begin
      let libs = [ Rng.pick rng fleet.fl_libsets ] in
      match D.connect ~socket with
      | exception Unix.Unix_error _ -> incr transport
      | fd ->
        let send_link () =
          let _, payload, _ = sample_module () in
          D.send fd
            (P.req ~deadline_ms:2000
               (P.Link { l_apps = [ payload ]; l_libs = libs;
                         l_validate = false }))
        in
        send_link ();
        send_link ();
        for _ = 1 to 2 do
          match D.receive fd with
          | Ok (P.Served _) -> incr served
          | Ok (P.Busy _) -> incr busy_final
          | Ok (P.Timed_out _) -> incr timeouts
          | Ok (P.Failed e)
            when String.length e >= 14
                 && String.sub e 0 14 = "worker crashed" ->
            incr crashes
          | Ok _ -> incr failed_other
          | Error _ -> incr transport
        done;
        D.close fd;
        (* recovery probes need their own connection *)
        for _ = 1 to !crashes - !recovered do
          recovery_probe i
        done
    end
  done;
  let elapsed = Unix.gettimeofday () -. t_start in
  (* final stats snapshot from the daemon itself *)
  let daemon_stats =
    match retry 0 (P.req P.Stats) with
    | Ok (P.Served { payload; _ }) -> payload
    | _ ->
      incr ping_failures;
      "{}"
  in
  (* graceful finale: SIGTERM must land a clean exit and no stale socket *)
  Unix.kill daemon_pid Sys.sigterm;
  let graceful =
    match Unix.waitpid [] daemon_pid with
    | _, Unix.WEXITED 0 ->
      (* the daemon unlinks on the way out *)
      let rec gone tries =
        if not (Sys.file_exists socket) then true
        else if tries = 0 then false
        else begin
          Unix.sleepf 0.02;
          gone (tries - 1)
        end
      in
      gone 25
    | _ -> false
  in
  let answered =
    !served + !busy_final + !failed_other + !transport + !timeouts + !crashes
  in
  let non_faulted = !served + !busy_final + !failed_other + !transport in
  let availability =
    if non_faulted = 0 then 0.0
    else float_of_int !served /. float_of_int non_faulted
  in
  let faulted = !timeouts + !crashes + !client_faults in
  let fault_share =
    float_of_int faulted /. float_of_int (max 1 (answered + !client_faults))
  in
  let lats = Array.of_list !latencies in
  Array.sort compare lats;
  let p50 = percentile lats 0.50 *. 1000.0 in
  let p99 = percentile lats 0.99 *. 1000.0 in
  let recov = Array.of_list !recovery_ms in
  Array.sort compare recov;
  let mean_recovery =
    if Array.length recov = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 recov /. float_of_int (Array.length recov)
  in
  say "%d requests in %.2fs (%.0f req/s), %d client-side frame faults" answered
    elapsed
    (float_of_int answered /. Float.max 1e-9 elapsed)
    !client_faults;
  say "served %d, timed out %d, worker crashes %d, busy %d, failed %d, \
       transport %d"
    !served !timeouts !crashes !busy_final !failed_other !transport;
  say "availability (non-faulted traffic): %.2f%%" (100.0 *. availability);
  say "fault share: %.2f%% of traffic (gate: >= 1%%)" (100.0 *. fault_share);
  say "recovery: %d/%d crashes followed by a successful fresh compile \
       (mean %.1fms, max %.1fms)"
    !recovered !crashes mean_recovery
    (if Array.length recov = 0 then 0.0 else recov.(Array.length recov - 1));
  say "liveness: %d/%d pings answered" (!pings - !ping_failures) !pings;
  say "differential: %d served compiles checked, %d mismatches" !diff_checked
    !diff_mismatches;
  say "latency under faults: p50 %.2fms, p99 %.2fms" p50 p99;
  say "graceful shutdown: %b (exit 0, socket unlinked)" graceful;
  let clean =
    !diff_mismatches = 0 && availability >= 0.99 && !recovered = !crashes
    && !ping_failures = 0 && graceful && fault_share >= 0.01
    && !diff_checked > 0
  in
  let oc = open_out "BENCH_chaos.json" in
  let j fmt = Printf.fprintf oc fmt in
  j "{\n";
  j "  \"requests\": %d,\n" answered;
  j "  \"elapsed_s\": %.3f,\n" elapsed;
  j "  \"client_frame_faults\": %d,\n" !client_faults;
  j "  \"served\": %d,\n" !served;
  j "  \"timed_out\": %d,\n" !timeouts;
  j "  \"worker_crashes_observed\": %d,\n" !crashes;
  j "  \"busy_after_retries\": %d,\n" !busy_final;
  j "  \"failed_other\": %d,\n" !failed_other;
  j "  \"transport_errors\": %d,\n" !transport;
  j "  \"availability\": %.4f,\n" availability;
  j "  \"fault_share\": %.4f,\n" fault_share;
  j "  \"recovered\": %d,\n" !recovered;
  j "  \"recovery_mean_ms\": %.2f,\n" mean_recovery;
  j "  \"recovery_max_ms\": %.2f,\n"
    (if Array.length recov = 0 then 0.0 else recov.(Array.length recov - 1));
  j "  \"pings\": %d,\n" !pings;
  j "  \"ping_failures\": %d,\n" !ping_failures;
  j "  \"differential_checked\": %d,\n" !diff_checked;
  j "  \"differential_mismatches\": %d,\n" !diff_mismatches;
  j "  \"p50_ms\": %.3f,\n" p50;
  j "  \"p99_ms\": %.3f,\n" p99;
  j "  \"graceful_shutdown\": %b,\n" graceful;
  j "  \"deadline_ms\": %d,\n" deadline_ms;
  j "  \"quick\": %b,\n" quick;
  j "  \"daemon_stats\": %s,\n" daemon_stats;
  j "  \"clean\": %b\n" clean;
  j "}\n";
  close_out oc;
  say "wrote BENCH_chaos.json";
  say "";
  if not clean then exit 1

(* -- Differential fuzzing smoke --------------------------------------------- *)

(* Not a paper table: a correctness gate.  Runs the multi-oracle fuzzer
   over a fixed seed range and fails the build on any divergence;
   minimized repros land in fuzz-corpus/ for the CI artifact upload. *)
let fuzz_bench ?(quick = false) () =
  let seeds = if quick then 200 else 500 in
  let cfg =
    { Llvm_fuzz.Fuzz.default_config with
      c_paths = 2;
      c_corpus = Some "fuzz-corpus" }
  in
  say "Differential fuzzing: %d seeds, oracles %s" seeds
    (String.concat ", "
       (List.map
          (fun (o : Llvm_fuzz.Oracle.t) -> o.Llvm_fuzz.Oracle.o_name)
          cfg.c_oracles));
  let (report : Llvm_fuzz.Fuzz.report), elapsed =
    time_it (fun () -> Llvm_fuzz.Fuzz.run cfg ~first:1 ~count:seeds)
  in
  say "  %d oracle checks in %.1fs: %d passed, %d failed, %d skipped"
    report.r_checks elapsed report.r_passed report.r_failed report.r_skipped;
  say "  %d semantics-preserving mutations applied" report.r_mutations;
  List.iter
    (fun (fa : Llvm_fuzz.Fuzz.failure) ->
      say "  FAIL seed=%d path=%d oracle=%s: %s%s" fa.fa_seed fa.fa_path
        fa.fa_oracle fa.fa_message
        (match fa.fa_repro with None -> "" | Some f -> " -> " ^ f))
    report.r_failures;
  let oc = open_out "BENCH_fuzz.json" in
  let j fmt = Printf.fprintf oc fmt in
  j "{\n";
  j "  \"seeds\": %d,\n" report.r_seeds;
  j "  \"checks\": %d,\n" report.r_checks;
  j "  \"passed\": %d,\n" report.r_passed;
  j "  \"failed\": %d,\n" report.r_failed;
  j "  \"skipped\": %d,\n" report.r_skipped;
  j "  \"mutations\": %d,\n" report.r_mutations;
  j "  \"elapsed_s\": %.2f,\n" elapsed;
  j "  \"quick\": %b,\n" quick;
  j "  \"clean\": %b\n" (report.r_failed = 0);
  j "}\n";
  close_out oc;
  say "wrote BENCH_fuzz.json";
  say "";
  if report.r_failed > 0 then exit 1

(* -- Fleet PGO: aggregate-profile speculative reoptimization ----------------- *)

(* ROADMAP item 2 end-to-end: a zipf fleet of instrumented runs per
   genprog workload (heterogeneous via the dispatch input global), the
   per-run profiles persisted and merged into one aggregate, and the
   aggregate driving Pgo.optimize (guarded indirect-call promotion +
   profile-guided inlining) plus hot/cold bytecode layout.  The gate:
   optimized behaviour is bit-identical on a held-out input, and — on
   the full run — the geomean speedup over the unoptimized module
   clears 1.15x, with the deopt rate reported. *)

type pgo_row = {
  g_name : string;
  g_base_s : float;
  g_opt_s : float;
  g_speedup : float;
  g_promoted : int;
  g_inlined : int;
  g_sites : int; (* indirect sites in the fleet aggregate *)
  g_icalls : int; (* indirect calls in one baseline run *)
  g_deopts : int; (* failed guards in one optimized run *)
  g_reps : int;
}

let time_reps_pgo ?profile ?(trials = 1) (m : Ir.modul) (reps : int) :
    float * int =
  (* bytecode tier for both sides: the ratio isolates what the
     aggregate profile bought, not interpretation overhead.  Best of
     [trials] (each averaging [reps] runs) with a major collection
     before each trial, so GC pauses and scheduler noise land on the
     discarded trials rather than in the ratio. *)
  let e = Llvm_exec.Engine.create ?profile Llvm_exec.Engine.Bytecode_tier m in
  ignore (Llvm_exec.Engine.compile_all e);
  let main = Option.get (Ir.find_func m "main") in
  let best = ref infinity in
  for _ = 1 to trials do
    Gc.full_major ();
    let _, total =
      time_it (fun () ->
          for _ = 1 to reps do
            ignore
              (Llvm_exec.Interp.run_function ~fuel:bench_fuel
                 e.Llvm_exec.Engine.mach main [])
          done)
    in
    best := Float.min !best (total /. float_of_int reps)
  done;
  (!best, Llvm_exec.Engine.deopts e)

(* The shipped binary: the statically optimized module (level 2), the
   thing a fleet actually runs and instruments.  Compilation is
   deterministic, so two [ship]s of one profile agree block-for-block —
   the aggregate's keys resolve identically in every copy. *)
let ship_pgo (p : Genprog.profile) : Ir.modul =
  let m = Genprog.compile p in
  Llvm_transforms.Pipelines.optimize_module ~level:2 m;
  m

let pgo_bench ?(quick = false) () =
  say "Fleet PGO: aggregate profiles + speculative reoptimization (sections 3.5, 4.1)";
  if quick then say "(--quick: reduced sizes and fleet, correctness-focused)";
  say "";
  let distinct = if quick then 6 else 16 in
  let total = if quick then 200 else 2000 in
  let holdout = 101 in (* never in the schedule: 1..distinct *)
  let fleet_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "llvm_fleet_%d" (Unix.getpid ()))
  in
  let schedule = Llvm_linker.Fleet.zipf_schedule ~distinct ~total in
  let behaviour_ok = ref true in
  say "%-14s %9s %9s %8s %9s %8s %7s %7s %9s" "Benchmark" "base(s)" "pgo(s)"
    "speedup" "promoted" "inlined" "icalls" "deopts" "deopt rate";
  let rows =
    List.map
      (fun p ->
        let p = if quick then Spec.quick p else p in
        let name = p.Genprog.p_name in
        (* 1. simulate the fleet on the shipped (unoptimized) program *)
        let rep =
          Llvm_linker.Fleet.simulate ~dir:(Filename.concat fleet_dir name)
            ~input_global:Genprog.input_global ~schedule (ship_pgo p)
        in
        (* 2. reoptimize a fresh copy under the merged aggregate *)
        let opt = ship_pgo p in
        let stats = Llvm_transforms.Pgo.optimize rep.aggregate opt in
        (* 3. behaviour identity on an input the fleet never ran *)
        let base_run, base_prof, _ =
          Llvm_linker.Fleet.field_run ~kind:Llvm_exec.Engine.Interp_tier
            ~input:(Genprog.input_global, holdout) (ship_pgo p)
        in
        let opt_run, _, _ =
          Llvm_linker.Fleet.field_run ~kind:Llvm_exec.Engine.Tiered
            ~input:(Genprog.input_global, holdout) ~profile:rep.aggregate opt
        in
        let same_status =
          match (base_run.Llvm_exec.Interp.status, opt_run.Llvm_exec.Interp.status) with
          | `Returned a, `Returned b -> a = b
          | `Exited a, `Exited b -> a = b
          | `Unwound, `Unwound -> true
          | `Trapped a, `Trapped b -> a = b
          | _ -> false
        in
        if
          (not same_status)
          || base_run.Llvm_exec.Interp.output <> opt_run.Llvm_exec.Interp.output
        then begin
          Fmt.epr "BEHAVIOUR MISMATCH %s: speculation changed the program@."
            name;
          behaviour_ok := false
        end;
        (* 4. timing, both sides on the bytecode tier *)
        let t1, _ = time_reps_pgo (ship_pgo p) 1 in
        let reps =
          if quick then 1
          else max 3 (min 300 (int_of_float (0.15 /. Float.max 1e-6 t1)))
        in
        let trials = if quick then 1 else 3 in
        let base_s, _ = time_reps_pgo ~trials (ship_pgo p) reps in
        let opt_s, deopts_total =
          time_reps_pgo ~trials ~profile:rep.aggregate opt reps
        in
        let deopts = deopts_total / max 1 (reps * trials) in
        let icalls =
          (* indirect calls in one baseline run = guard executions in
             one optimized run (same input, deterministic program) *)
          Llvm_profile.Profile.total_calls base_prof
        in
        let speedup = base_s /. Float.max 1e-9 opt_s in
        let rate = float_of_int deopts /. float_of_int (max 1 icalls) in
        say "%-14s %9.4f %9.4f %7.2fx %9d %8d %7d %7d %8.1f%%" name base_s
          opt_s speedup stats.Llvm_transforms.Pgo.promoted stats.inlined
          icalls deopts (100.0 *. rate);
        { g_name = name; g_base_s = base_s; g_opt_s = opt_s;
          g_speedup = speedup; g_promoted = stats.promoted;
          g_inlined = stats.inlined;
          g_sites = Llvm_profile.Profile.call_sites rep.aggregate;
          g_icalls = icalls; g_deopts = deopts; g_reps = reps })
      (Spec.spec2000 @ Spec.disciplined)
  in
  let gm =
    exp
      (List.fold_left (fun a r -> a +. log r.g_speedup) 0.0 rows
      /. float_of_int (List.length rows))
  in
  let promoted = List.fold_left (fun a r -> a + r.g_promoted) 0 rows in
  let icalls = List.fold_left (fun a r -> a + r.g_icalls) 0 rows in
  let deopts = List.fold_left (fun a r -> a + r.g_deopts) 0 rows in
  let deopt_rate = float_of_int deopts /. float_of_int (max 1 icalls) in
  say "";
  say "fleet: %d simulated runs over %d distinct inputs per workload"
    (List.fold_left (fun a (_, w) -> a + w) 0 schedule)
    distinct;
  say "geomean speedup: %.2fx; %d sites promoted; deopt rate %.1f%% (%d/%d)"
    gm promoted (100.0 *. deopt_rate) deopts icalls;
  (* quick runs gate on correctness only (CI boxes time noisily); the
     full run also enforces the 1.15x geomean *)
  let clean =
    !behaviour_ok && promoted > 0 && ((not quick) || gm > 0.0)
    && (quick || gm >= 1.15)
  in
  let oc = open_out "BENCH_pgo.json" in
  let j fmt = Printf.fprintf oc fmt in
  j "{\n  \"workloads\": [\n";
  List.iteri
    (fun k r ->
      j
        "    {\"name\": %S, \"base_s\": %.6f, \"pgo_s\": %.6f, \"speedup\": \
         %.3f, \"promoted\": %d, \"inlined\": %d, \"sites\": %d, \
         \"indirect_calls\": %d, \"deopts\": %d, \"reps\": %d}%s\n"
        r.g_name r.g_base_s r.g_opt_s r.g_speedup r.g_promoted r.g_inlined
        r.g_sites r.g_icalls r.g_deopts r.g_reps
        (if k = List.length rows - 1 then "" else ","))
    rows;
  j "  ],\n";
  j "  \"geomean_speedup_genprog\": %.3f,\n" gm;
  j "  \"simulated_runs_per_workload\": %d,\n"
    (List.fold_left (fun a (_, w) -> a + w) 0 schedule);
  j "  \"distinct_inputs\": %d,\n" distinct;
  j "  \"sites_promoted\": %d,\n" promoted;
  j "  \"deopts\": %d,\n" deopts;
  j "  \"indirect_calls\": %d,\n" icalls;
  j "  \"deopt_rate\": %.4f,\n" deopt_rate;
  j "  \"behaviour_identical\": %b,\n" !behaviour_ok;
  j "  \"quick\": %b,\n" quick;
  j "  \"clean\": %b\n" clean;
  j "}\n";
  close_out oc;
  say "wrote BENCH_pgo.json";
  say "";
  if not clean then exit 1

(* -- Witness validation overhead -------------------------------------------- *)

(* Regenerates BENCH_validate.json (previously orphaned): every
   workload compiled at -O3 through the serving layer twice, plain and
   with the translation-validation witness checked, plus the
   inject-sub-swap rejection self-test.  Fresh server per request so
   the cache cannot hide the validation cost. *)
let validate_bench ?(quick = false) () =
  say "Translation validation: plain vs witness-validated -O3 compiles";
  if quick then say "(--quick: reduced workload sizes)";
  say "";
  let level = 3 in
  let programs =
    List.map
      (fun p ->
        let p = if quick then Spec.quick p else p in
        (p.Genprog.p_name, Genprog.compile p))
      (Spec.spec2000 @ Spec.disciplined)
    @ List.map
        (fun (name, src) -> (name, Ehprog.compile name src))
        Ehprog.programs
  in
  let ok = ref true in
  let compile payload ~validate =
    let server = Llvm_serve.Server.create () in
    let resp, dt =
      time_it (fun () ->
          Llvm_serve.Server.handle server
            (Llvm_serve.Protocol.req
               (Llvm_serve.Protocol.Compile
                  { c_payload = payload;
                    c_pipeline = Llvm_serve.Protocol.Level level;
                    c_validate = validate })))
    in
    let rejected =
      match resp with
      | Llvm_serve.Protocol.Served _ -> 0
      | Llvm_serve.Protocol.Rejected why ->
        Fmt.epr "unexpected validation reject: %s@." why;
        ok := false;
        1
      | _ ->
        Fmt.epr "request failed@.";
        ok := false;
        0
    in
    (dt, rejected)
  in
  say "%-16s %10s %12s %9s" "Benchmark" "plain(s)" "validated(s)" "rejected";
  let rows =
    List.map
      (fun (name, m) ->
        let payload = fst (Llvm_bitcode.Encoder.encode m) in
        let plain_s, _ = compile payload ~validate:false in
        let validated_s, rejected = compile payload ~validate:true in
        say "%-16s %10.4f %12.4f %9d" name plain_s validated_s rejected;
        (name, plain_s, validated_s, rejected))
      programs
  in
  let injected_rejected =
    let _ = Llvm_fuzz.Oracle.injected_bug_pass in
    let payload = fst (Llvm_bitcode.Encoder.encode (snd (List.hd programs))) in
    let server = Llvm_serve.Server.create () in
    match
      Llvm_serve.Server.handle server
        (Llvm_serve.Protocol.req
           (Llvm_serve.Protocol.Compile
              { c_payload = payload;
                c_pipeline = Llvm_serve.Protocol.Passes [ "inject-sub-swap" ];
                c_validate = true }))
    with
    | Llvm_serve.Protocol.Rejected _ -> true
    | _ -> false
  in
  let plain = List.fold_left (fun a (_, p, _, _) -> a +. p) 0.0 rows in
  let validated = List.fold_left (fun a (_, _, v, _) -> a +. v) 0.0 rows in
  let rejected = List.fold_left (fun a (_, _, _, r) -> a + r) 0 rows in
  let clean = !ok && rejected = 0 && injected_rejected in
  say "";
  say "total: plain %.4fs, validated %.4fs (%.2fx); %d unexpected rejects"
    plain validated
    (validated /. Float.max 1e-9 plain)
    rejected;
  say "inject-sub-swap rejected by the witness check: %b" injected_rejected;
  let oc = open_out "BENCH_validate.json" in
  let j fmt = Printf.fprintf oc fmt in
  j "{\n";
  j "  \"quick\": %b,\n" quick;
  j "  \"workloads\": [\n";
  List.iteri
    (fun k (name, p, v, r) ->
      j
        "    {\"name\": %S, \"level\": %d, \"plain_s\": %.4f, \
         \"validated_s\": %.4f, \"rejected\": %d}%s\n"
        name level p v r
        (if k = List.length rows - 1 then "" else ","))
    rows;
  j "  ],\n";
  j "  \"plain_s\": %.4f,\n" plain;
  j "  \"validated_s\": %.4f,\n" validated;
  j "  \"overhead\": %.3f,\n" (validated /. Float.max 1e-9 plain);
  j "  \"rejected\": %d,\n" rejected;
  j "  \"injected_miscompile_rejected\": %b,\n" injected_rejected;
  j "  \"clean\": %b\n" clean;
  j "}\n";
  close_out oc;
  say "wrote BENCH_validate.json";
  say "";
  if not clean then exit 1

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "table1" :: rest ->
    table1 ~field_sensitive:(not (List.mem "--no-fields" rest)) ()
  | _ :: "table2" :: rest -> table2 ~promote:(not (List.mem "--raw" rest)) ()
  | _ :: "figure5" :: _ -> figure5 ()
  | _ :: "lifelong" :: _ -> lifelong ()
  | _ :: "safecode" :: _ -> safecode ()
  | _ :: "ranges" :: rest -> ranges_bench ~quick:(List.mem "--quick" rest) ()
  | _ :: "poolalloc" :: _ -> poolalloc ()
  | _ :: "lint" :: _ -> lint ()
  | _ :: "exec" :: rest -> exec_bench ~quick:(List.mem "--quick" rest) ()
  | _ :: "fuzz" :: rest -> fuzz_bench ~quick:(List.mem "--quick" rest) ()
  | _ :: "serve" :: rest -> serve_bench ~quick:(List.mem "--quick" rest) ()
  | _ :: "chaos" :: rest -> chaos_bench ~quick:(List.mem "--quick" rest) ()
  | _ :: "pgo" :: rest -> pgo_bench ~quick:(List.mem "--quick" rest) ()
  | _ :: "validate" :: rest -> validate_bench ~quick:(List.mem "--quick" rest) ()
  | _ :: "micro" :: _ -> micro ()
  | _ ->
    table1 ();
    table2 ();
    figure5 ();
    safecode ();
    ranges_bench ();
    poolalloc ();
    lint ();
    exec_bench ();
    pgo_bench ();
    validate_bench ();
    fuzz_bench ~quick:true ();
    serve_bench ~quick:true ();
    chaos_bench ~quick:true ();
    lifelong ()
